"""Unit tests for the sweep executor and the content-addressed cache."""

import json
import os

import pytest

from repro.core.cache import SweepCache, point_key
from repro.core.executor import SweepExecutor, resolve_jobs
from repro.core.sweep import sweep
from repro.errors import OffloadError
from repro.soc.config import SoCConfig


CFG = SoCConfig.extended(num_clusters=8)
N_VALUES = [64, 128]
M_VALUES = [1, 4]


def run(executor, **kwargs):
    kwargs.setdefault("n_values", N_VALUES)
    kwargs.setdefault("m_values", M_VALUES)
    return executor.run(CFG, "daxpy", **kwargs)


# ----------------------------------------------------------------------
# Worker-count policy and validation
# ----------------------------------------------------------------------
def test_resolve_jobs_policy():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    with pytest.raises(OffloadError):
        resolve_jobs(-1)


def test_chunk_size_validated():
    with pytest.raises(OffloadError):
        SweepExecutor(chunk_size=0)


def test_executor_validates_grid_like_sweep():
    executor = SweepExecutor()
    with pytest.raises(OffloadError):
        executor.run(CFG, "daxpy", [], [1])
    with pytest.raises(OffloadError):
        executor.run(CFG, "daxpy", [64], [])
    with pytest.raises(OffloadError):
        executor.run(CFG, "daxpy", [64], [16])  # wider than the fabric


# ----------------------------------------------------------------------
# Determinism: parallel output is the serial output
# ----------------------------------------------------------------------
def test_parallel_matches_serial_bit_for_bit():
    serial = run(SweepExecutor(jobs=1))
    parallel = run(SweepExecutor(jobs=2, chunk_size=1))
    assert parallel == serial
    assert [p.runtime_cycles for p in parallel] == \
        [p.runtime_cycles for p in serial]
    assert [dict(p.phases) for p in parallel] == \
        [dict(p.phases) for p in serial]


def test_parallel_progress_streams_in_grid_order():
    seen = []
    run(SweepExecutor(jobs=2, chunk_size=1), progress=seen.append)
    assert [(p.n, p.num_clusters) for p in seen] == \
        [(n, m) for n in N_VALUES for m in M_VALUES]


def test_sweep_function_accepts_jobs():
    assert sweep(CFG, "daxpy", N_VALUES, M_VALUES, jobs=2) == \
        sweep(CFG, "daxpy", N_VALUES, M_VALUES)


# ----------------------------------------------------------------------
# Cache: hits, misses, and invalidation
# ----------------------------------------------------------------------
def test_second_identical_sweep_simulates_nothing():
    executor = SweepExecutor(cache=SweepCache())
    first = run(executor)
    assert executor.cache_hits == 0
    assert executor.cache_misses == len(first)
    # Every point was measured this run: calibrations through the
    # event engine plus batch-planned predictions.
    assert executor.simulated_points + executor.planned_points \
        == len(first)
    second = run(executor)
    assert second == first
    assert executor.cache_hits == len(first)
    assert executor.cache_misses == 0
    assert executor.simulated_points == 0


def test_cached_points_stream_progress_in_grid_order():
    executor = SweepExecutor(cache=SweepCache())
    run(executor)
    seen = []
    run(executor, progress=seen.append)
    assert [(p.n, p.num_clusters) for p in seen] == \
        [(n, m) for n in N_VALUES for m in M_VALUES]


def test_config_change_misses():
    cache = SweepCache()
    run(SweepExecutor(cache=cache))
    retuned = SweepExecutor(cache=cache)
    retuned.run(SoCConfig.extended(num_clusters=8, noc_store_occupancy=4),
                "daxpy", N_VALUES, M_VALUES)
    assert retuned.cache_hits == 0
    assert retuned.simulated_points + retuned.planned_points \
        == len(N_VALUES) * len(M_VALUES)


@pytest.mark.parametrize("kwargs", [
    {"seed": 1},
    {"variant": "baseline"},
    {"scalars": {"a": 2.0}},
])
def test_job_coordinate_changes_miss(kwargs):
    cache = SweepCache()
    run(SweepExecutor(cache=cache))
    executor = SweepExecutor(cache=cache)
    run(executor, **kwargs)
    assert executor.cache_hits == 0


def test_point_key_is_stable_and_sensitive():
    key = point_key(CFG, "daxpy", 64, 4, "auto", None, 0)
    assert key == point_key(CFG, "daxpy", 64, 4, "auto", None, 0)
    assert key != point_key(CFG, "daxpy", 64, 4, "auto", None, 1)
    assert key != point_key(CFG, "daxpy", 128, 4, "auto", None, 0)
    assert key != point_key(CFG.with_features(multicast=False, hw_sync=True),
                            "daxpy", 64, 4, "auto", None, 0)


def test_config_digest_reflects_every_knob():
    assert CFG.digest() == SoCConfig.extended(num_clusters=8).digest()
    assert CFG.digest() != SoCConfig.baseline(num_clusters=8).digest()
    assert CFG.digest() != \
        SoCConfig.extended(num_clusters=8, dma_setup_cycles=17).digest()


# ----------------------------------------------------------------------
# Cache: the on-disk layer
# ----------------------------------------------------------------------
def test_disk_cache_survives_the_process(tmp_path):
    directory = str(tmp_path / "cache")
    first = run(SweepExecutor(cache=SweepCache(directory)))
    reloaded = SweepExecutor(cache=SweepCache(directory))
    second = run(reloaded)
    assert second == first
    assert reloaded.simulated_points == 0
    assert reloaded.cache_hits == len(first)


def test_disk_cache_shared_by_parallel_workers(tmp_path):
    directory = str(tmp_path / "cache")
    first = run(SweepExecutor(jobs=2, cache=SweepCache(directory)))
    reloaded = SweepExecutor(jobs=2, cache=SweepCache(directory))
    assert run(reloaded) == first
    assert reloaded.simulated_points == 0


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    directory = str(tmp_path / "cache")
    run(SweepExecutor(cache=SweepCache(directory)))
    for name in os.listdir(directory):
        with open(os.path.join(directory, name), "w") as handle:
            handle.write("{not json")
    recovered = SweepExecutor(cache=SweepCache(directory))
    result = run(recovered)
    assert recovered.cache_hits == 0
    assert recovered.simulated_points + recovered.planned_points \
        == len(result)


def test_stale_schema_is_a_miss(tmp_path):
    directory = str(tmp_path / "cache")
    run(SweepExecutor(cache=SweepCache(directory)))
    for name in os.listdir(directory):
        path = os.path.join(directory, name)
        with open(path) as handle:
            record = json.load(handle)
        record["schema"] = -1
        with open(path, "w") as handle:
            json.dump(record, handle)
    recovered = SweepExecutor(cache=SweepCache(directory))
    run(recovered)
    assert recovered.cache_hits == 0


def _mangle_cache_records(directory, mutate):
    """Apply ``mutate(record) -> record`` to every on-disk cache file."""
    for name in os.listdir(directory):
        path = os.path.join(directory, name)
        with open(path) as handle:
            record = json.load(handle)
        with open(path, "w") as handle:
            json.dump(mutate(record), handle)


# ----------------------------------------------------------------------
# Cache: the LRU bound on the disk layer
# ----------------------------------------------------------------------
def test_max_entries_is_validated():
    with pytest.raises(ValueError):
        SweepCache(max_entries=0)


def test_disk_layer_is_lru_bounded(tmp_path):
    directory = str(tmp_path / "cache")
    cache = SweepCache(directory, max_entries=3)
    for i in range(6):
        cache.put_record(f"{i:064x}", "prefix", {"value": i})
    files = [n for n in os.listdir(directory) if n.endswith(".json")]
    assert len(files) == 3
    assert cache.evictions == 3
    # The survivors are the most recently written records.
    survivors = {name[:-len(".json")] for name in files}
    assert survivors == {f"{i:064x}" for i in (3, 4, 5)}


def test_lru_reads_refresh_recency(tmp_path):
    directory = str(tmp_path / "cache")
    cache = SweepCache(directory, max_entries=2)
    cache.put_record(f"{0:064x}", "prefix", {"value": 0})
    cache.put_record(f"{1:064x}", "prefix", {"value": 1})
    # Age the first record's mtime, then *use* it from a fresh cache
    # (the in-memory layer must not mask the disk read).
    past = os.path.getmtime(os.path.join(directory, f"{1:064x}.json")) - 60
    os.utime(os.path.join(directory, f"{0:064x}.json"), (past, past))
    reader = SweepCache(directory, max_entries=2)
    assert reader.get_record(f"{0:064x}", "prefix") == {"value": 0}
    os.utime(os.path.join(directory, f"{1:064x}.json"), (past, past))
    reader.put_record(f"{2:064x}", "prefix", {"value": 2})
    names = {n for n in os.listdir(directory) if n.endswith(".json")}
    # Record 1 (stale mtime) was evicted; the freshly read 0 survived.
    assert names == {f"{0:064x}.json", f"{2:064x}.json"}
    assert reader.evictions == 1


def test_max_entries_defaults_to_the_environment(tmp_path, monkeypatch):
    from repro.flags import CACHE_MAX_ENTRIES_ENV
    monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "2")
    cache = SweepCache(str(tmp_path / "cache"))
    assert cache.max_entries == 2
    for i in range(4):
        cache.put_record(f"{i:064x}", "prefix", {"value": i})
    assert cache.evictions == 2
    monkeypatch.delenv(CACHE_MAX_ENTRIES_ENV)
    assert SweepCache(str(tmp_path / "other")).max_entries is None


# ----------------------------------------------------------------------
# Cache: calibration records
# ----------------------------------------------------------------------
def test_calibration_records_round_trip_and_check_kind(tmp_path):
    directory = str(tmp_path / "cache")
    cache = SweepCache(directory)
    key = "ab" * 32
    cache.put_record(key, "prefix", {"start_cycle": 10})
    assert cache.get_record(key, "prefix") == {"start_cycle": 10}
    # A prefix key can never answer an M-model request.
    assert cache.get_record(key, "mmodel") is None
    # And it survives the process (a fresh cache over the same dir).
    assert SweepCache(directory).get_record(key, "prefix") \
        == {"start_cycle": 10}
    assert SweepCache(directory).get_record("cd" * 32, "prefix") is None


def test_malformed_calibration_record_is_a_warned_miss(tmp_path):
    from repro.sim import IntegrityWarning
    directory = str(tmp_path / "cache")
    cache = SweepCache(directory)
    key = "ab" * 32
    cache.put_record(key, "prefix", {"start_cycle": 10})
    _mangle_cache_records(directory, lambda r: {**r, "payload": [1, 2]})
    with pytest.warns(IntegrityWarning,
                      match="malformed calibration record"):
        assert SweepCache(directory).get_record(key, "prefix") is None


def test_calibration_key_separates_namespaces():
    from repro.core.cache import calibration_key
    base = dict(config=CFG, kernel_name="daxpy", variant_name="extended",
                scalars=None, seed=0)
    assert calibration_key("prefix", m=2, **base) \
        != calibration_key("prefix", m=3, **base)
    assert calibration_key("prefix", m=2, **base) \
        != calibration_key("mmodel", **base)
    assert calibration_key("mmodel", **base) \
        == calibration_key("mmodel", **base)
    other = dict(base, config=SoCConfig.baseline(num_clusters=8))
    assert calibration_key("mmodel", **base) \
        != calibration_key("mmodel", **other)


@pytest.mark.parametrize("mutate", [
    pytest.param(lambda r: {k: v for k, v in r.items() if k != "n"},
                 id="missing-key"),
    pytest.param(lambda r: {**r, "n": "sixty-four"}, id="mistyped-n"),
    pytest.param(lambda r: {**r, "phases": [1, 2, 3]}, id="phases-not-a-map"),
    pytest.param(lambda r: {**r, "phases": {"setup": "fast"}},
                 id="phase-cycles-not-int"),
    pytest.param(lambda r: [r], id="record-not-a-dict"),
])
def test_malformed_cache_record_is_a_warned_miss(tmp_path, mutate):
    from repro.sim import IntegrityWarning
    directory = str(tmp_path / "cache")
    first = run(SweepExecutor(cache=SweepCache(directory)))
    _mangle_cache_records(directory, mutate)
    recovered = SweepExecutor(cache=SweepCache(directory))
    # Point records warn "malformed cache record"; mutations that also
    # break the calibration records alongside them warn "malformed
    # calibration record" — both are the same corruption story.
    with pytest.warns(IntegrityWarning, match="malformed .* record"):
        result = run(recovered)
    assert recovered.cache_hits == 0
    assert recovered.simulated_points + recovered.planned_points \
        == len(result)
    assert result == first   # re-measured, not silently wrong
