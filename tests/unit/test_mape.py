"""Unit tests for the MAPE metric (Eq. 2)."""

import pytest

from repro.core.mape import PAPER_M_VALUES, PAPER_N_VALUES, mape, mape_table, max_ape
from repro.core.model import PAPER_DAXPY_MODEL
from repro.errors import ModelError


def test_perfect_prediction_is_zero():
    assert mape([100, 200], [100, 200]) == 0.0


def test_known_value():
    # 10% off on one of two points -> 5% mean.
    assert mape([100, 100], [110, 100]) == pytest.approx(5.0)


def test_symmetric_in_sign_of_error():
    assert mape([100], [90]) == mape([100], [110])


def test_max_ape_reports_worst_case():
    assert max_ape([100, 100], [101, 120]) == pytest.approx(20.0)


def test_validation():
    with pytest.raises(ModelError):
        mape([], [])
    with pytest.raises(ModelError):
        mape([100], [100, 200])
    with pytest.raises(ModelError):
        mape([0.0], [1.0])
    with pytest.raises(ModelError):
        max_ape([100], [1, 2])
    with pytest.raises(ModelError):
        max_ape([], [])
    with pytest.raises(ModelError):
        max_ape([-1.0], [1.0])


def test_mape_table_groups_by_n():
    model = PAPER_DAXPY_MODEL
    runtimes = {}
    for n in PAPER_N_VALUES:
        for m in PAPER_M_VALUES:
            runtimes[(m, n)] = model.predict(m, n) * 1.01  # uniform +1%
    table = mape_table(model, runtimes)
    assert sorted(table) == sorted(PAPER_N_VALUES)
    for value in table.values():
        assert value == pytest.approx(100 * (1 - 1 / 1.01), rel=1e-6)


def test_mape_table_empty_rejected():
    with pytest.raises(ModelError):
        mape_table(PAPER_DAXPY_MODEL, {})


def test_paper_grids_match_paper():
    assert PAPER_N_VALUES == (256, 512, 768, 1024)
    assert PAPER_M_VALUES == (1, 2, 4, 8, 16, 32)
