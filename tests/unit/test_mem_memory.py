"""Unit tests for MainMemory storage, vectors, and the allocator."""

import numpy
import pytest

from repro.errors import MemoryError_
from repro.mem import MainMemory, WORD_BYTES


BASE = 0x8000_0000


def make_memory(size=4096):
    return MainMemory(size_bytes=size, base=BASE)


def test_word_roundtrip():
    mem = make_memory()
    mem.write_word(BASE + 16, 0xDEADBEEF)
    assert mem.read_word(BASE + 16) == 0xDEADBEEF


def test_words_default_to_zero():
    mem = make_memory()
    assert mem.read_word(BASE) == 0


def test_word_wraps_modulo_64_bits():
    mem = make_memory()
    mem.write_word(BASE, (1 << 64) + 5)
    assert mem.read_word(BASE) == 5


def test_unaligned_word_access_rejected():
    mem = make_memory()
    with pytest.raises(MemoryError_):
        mem.read_word(BASE + 3)
    with pytest.raises(MemoryError_):
        mem.write_word(BASE + 5, 1)


def test_out_of_range_access_rejected():
    mem = make_memory(size=64)
    with pytest.raises(MemoryError_):
        mem.read_word(BASE + 64)
    with pytest.raises(MemoryError_):
        mem.read_word(BASE - WORD_BYTES)
    with pytest.raises(MemoryError_):
        mem.write_word(BASE + 64, 1)


def test_f64_vector_roundtrip():
    mem = make_memory()
    values = numpy.array([1.5, -2.25, 3.0e10, 0.0])
    mem.write_f64(BASE + 8, values)
    numpy.testing.assert_array_equal(mem.read_f64(BASE + 8, 4), values)


def test_f64_read_returns_copy():
    mem = make_memory()
    mem.write_f64(BASE, numpy.array([1.0]))
    view = mem.read_f64(BASE, 1)
    view[0] = 99.0
    assert mem.read_f64(BASE, 1)[0] == 1.0


def test_f64_out_of_range_rejected():
    mem = make_memory(size=64)
    with pytest.raises(MemoryError_):
        mem.write_f64(BASE + 32, numpy.zeros(5))


def test_byte_block_roundtrip():
    mem = make_memory()
    block = numpy.arange(32, dtype=numpy.uint8)
    mem.write_bytes(BASE + 100, block)
    numpy.testing.assert_array_equal(mem.read_bytes(BASE + 100, 32), block)


def test_bytes_and_words_share_storage():
    mem = make_memory()
    mem.write_word(BASE, 0x0102030405060708)
    block = mem.read_bytes(BASE, 8)
    # Little-endian layout.
    assert list(block) == [8, 7, 6, 5, 4, 3, 2, 1]


def test_alloc_returns_disjoint_aligned_buffers():
    mem = make_memory()
    a = mem.alloc(24)
    b = mem.alloc(10)
    c = mem.alloc(8, align=64)
    assert a % WORD_BYTES == 0
    assert b >= a + 24
    assert c % 64 == 0
    assert c >= b + 10


def test_alloc_f64():
    mem = make_memory()
    addr = mem.alloc_f64(16)
    mem.write_f64(addr, numpy.ones(16))
    assert mem.read_f64(addr, 16).sum() == 16.0


def test_alloc_exhaustion():
    mem = make_memory(size=64)
    mem.alloc(48)
    with pytest.raises(MemoryError_):
        mem.alloc(32)


def test_alloc_invalid_arguments():
    mem = make_memory()
    with pytest.raises(MemoryError_):
        mem.alloc(0)
    with pytest.raises(MemoryError_):
        mem.alloc(8, align=3)


def test_reset_allocator_reuses_space():
    mem = make_memory(size=64)
    first = mem.alloc(64)
    mem.reset_allocator()
    assert mem.alloc(64) == first


def test_allocated_bytes_tracks_padding():
    mem = make_memory()
    mem.alloc(4)          # pads to 8 on the next aligned alloc
    mem.alloc(8, align=16)
    assert mem.allocated_bytes >= 12


def test_invalid_size_rejected():
    with pytest.raises(MemoryError_):
        MainMemory(size_bytes=0)
    with pytest.raises(MemoryError_):
        MainMemory(size_bytes=12)  # not a multiple of the word size


def test_contains():
    mem = make_memory(size=64)
    assert mem.contains(BASE)
    assert mem.contains(BASE + 63)
    assert not mem.contains(BASE + 64)
    assert not mem.contains(BASE - 1)
