"""The strategy registry: round-trips, registration rules, live views."""

import pytest

from repro.errors import OffloadError
from repro.runtime import RUNTIME_VARIANTS
from repro.runtime.strategies import (
    AmoPollCompletion,
    MulticastDispatch,
    SequentialStoreDispatch,
    SyncUnitCompletion,
    get_variant,
    register_variant,
    variant_features,
    variant_for_features,
    variant_names,
)
from repro.soc.config import VARIANT_FEATURES, SoCConfig

PAPER_VARIANTS = ("baseline", "multicast_only", "hw_sync_only", "extended")


def test_the_four_paper_variants_are_registered():
    assert set(PAPER_VARIANTS) <= set(variant_names())


@pytest.mark.parametrize("name", PAPER_VARIANTS)
def test_name_to_features_to_name_round_trip(name):
    spec = get_variant(name)
    assert variant_for_features(*spec.features).name == name


def test_features_match_the_historical_table():
    assert variant_features()["baseline"] == (False, False)
    assert variant_features()["multicast_only"] == (True, False)
    assert variant_features()["hw_sync_only"] == (False, True)
    assert variant_features()["extended"] == (True, True)


def test_spec_features_derive_from_strategies():
    spec = get_variant("extended")
    assert isinstance(spec.dispatch, MulticastDispatch)
    assert isinstance(spec.completion, SyncUnitCompletion)
    assert spec.use_multicast and spec.use_hw_sync
    spec = get_variant("baseline")
    assert isinstance(spec.dispatch, SequentialStoreDispatch)
    assert isinstance(spec.completion, AmoPollCompletion)
    assert not spec.use_multicast and not spec.use_hw_sync


def test_unknown_variant_lists_the_registry():
    with pytest.raises(OffloadError, match="available"):
        get_variant("warp_speed")


def test_auto_name_is_reserved():
    with pytest.raises(OffloadError, match="auto"):
        register_variant("auto", SequentialStoreDispatch(),
                         AmoPollCompletion())


def test_duplicate_registration_requires_replace():
    with pytest.raises(OffloadError, match="already registered"):
        register_variant("baseline", SequentialStoreDispatch(),
                         AmoPollCompletion())
    # replace=True restores the exact same pairing, so the registry is
    # unchanged after this test.
    spec = register_variant("baseline", SequentialStoreDispatch(),
                            AmoPollCompletion(), replace=True)
    assert spec.features == (False, False)


def test_config_view_and_runtime_table_are_the_same_registry():
    assert dict(VARIANT_FEATURES) == variant_features()
    assert dict(RUNTIME_VARIANTS) == variant_features()


@pytest.mark.parametrize("name", PAPER_VARIANTS)
def test_for_variant_round_trips_through_the_registry(name):
    config = SoCConfig.extended().for_variant(name)
    multicast, hw_sync = get_variant(name).features
    assert config.multicast == multicast
    assert config.hw_sync == hw_sync
