"""Unit tests for the double-buffered device execution protocol."""

import numpy
import pytest

from repro.core.offload import offload, offload_daxpy
from repro.errors import OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def test_functional_result_identical_to_phased():
    rng = numpy.random.default_rng(9)
    x, y = rng.normal(size=500), rng.normal(size=500)
    phased = offload(ext_system(), "daxpy", 500, 4, scalars={"a": 2.5},
                     inputs={"x": x, "y": y})
    dbuf = offload(ext_system(), "daxpy", 500, 4, scalars={"a": 2.5},
                   inputs={"x": x, "y": y}, exec_mode="double_buffered")
    numpy.testing.assert_array_equal(phased.outputs["y"], dbuf.outputs["y"])
    assert dbuf.verified is True


@pytest.mark.parametrize("kernel", ["daxpy", "saxpy", "axpby", "memcpy",
                                    "scale", "relu", "stencil3"])
def test_elementwise_kernels_support_double_buffering(kernel):
    result = offload(ext_system(), kernel, 400, 4,
                     exec_mode="double_buffered")
    assert result.verified is True


@pytest.mark.parametrize("kernel", ["vecsum", "dot"])
def test_reduction_kernels_reject_double_buffering(kernel):
    with pytest.raises(OffloadError, match="element-wise"):
        offload(ext_system(), kernel, 400, 4, exec_mode="double_buffered")


def test_unknown_exec_mode_rejected():
    with pytest.raises(OffloadError, match="exec mode"):
        offload(ext_system(), "daxpy", 64, 2, exec_mode="warp")


def test_overlap_beats_phased_on_memory_bound_shapes():
    phased = offload_daxpy(ext_system(), n=8192, num_clusters=2,
                           verify=False)
    dbuf = offload_daxpy(ext_system(), n=8192, num_clusters=2,
                         exec_mode="double_buffered", verify=False)
    assert dbuf.runtime_cycles < 0.8 * phased.runtime_cycles


def test_tiny_slices_fall_back_to_phased_timing():
    """Below the chunking threshold both modes behave identically."""
    phased = offload_daxpy(ext_system(), n=64, num_clusters=8, verify=False)
    dbuf = offload_daxpy(ext_system(), n=64, num_clusters=8,
                         exec_mode="double_buffered", verify=False)
    assert dbuf.runtime_cycles == phased.runtime_cycles


def test_unlocks_jobs_exceeding_tcdm():
    """A 1-cluster DAXPY needing 2x the TCDM only runs double-buffered."""
    system = ext_system(num_clusters=1)
    with pytest.raises(OffloadError, match="TCDM"):
        offload_daxpy(system, n=16384, num_clusters=1)
    result = offload_daxpy(ext_system(num_clusters=1), n=16384,
                           num_clusters=1, exec_mode="double_buffered")
    assert result.verified is True


def test_chunking_adapts_to_tiny_tcdm():
    """The device runtime picks as many chunks as the TCDM demands."""
    result = offload_daxpy(ext_system(num_clusters=1, tcdm_bytes=1024),
                           n=16384, num_clusters=1,
                           exec_mode="double_buffered")
    assert result.verified is True


def test_double_buffer_chunk_pair_capacity_check():
    """A chunk with an irreducible floor (GEMV stages the whole x
    vector per chunk) must still pair-fit the TCDM, or fail loudly."""
    system = ext_system(num_clusters=1, tcdm_bytes=2048)
    with pytest.raises(OffloadError, match="double-buffer"):
        offload(system, "gemv", 256, 1, exec_mode="double_buffered")


def test_channel_traffic_identical_across_modes():
    """Overlap changes timing, never the bytes moved."""
    sys_a, sys_b = ext_system(), ext_system()
    offload_daxpy(sys_a, n=2048, num_clusters=4, verify=False)
    offload_daxpy(sys_b, n=2048, num_clusters=4,
                  exec_mode="double_buffered", verify=False)
    assert sys_a.read_channel.bytes_moved == sys_b.read_channel.bytes_moved
    assert sys_a.write_channel.bytes_moved == sys_b.write_channel.bytes_moved


def test_sequential_double_buffered_offloads():
    system = ext_system()
    first = offload_daxpy(system, n=1024, num_clusters=4,
                          exec_mode="double_buffered")
    second = offload_daxpy(system, n=1024, num_clusters=4,
                           exec_mode="double_buffered")
    assert first.verified and second.verified
    assert (second.end_cycle - second.start_cycle
            == first.end_cycle - first.start_cycle)
