"""Unit tests for the simulation kernel run loop and scheduling."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_callback_at_delay():
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda arg: seen.append((sim.now, arg)), "x")
    sim.run()
    assert seen == [(5, "x")]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda arg: None)


def test_same_cycle_callbacks_fire_in_fifo_order():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(3, lambda arg, i=i: seen.append(i))
    sim.run()
    assert seen == list(range(10))


def test_callbacks_fire_in_time_order_regardless_of_insertion():
    sim = Simulator()
    seen = []
    for delay in [7, 1, 5, 3, 9, 0]:
        sim.schedule(delay, lambda arg, d=delay: seen.append(d))
    sim.run()
    assert seen == [0, 1, 3, 5, 7, 9]


def test_run_until_cycle_includes_events_at_that_cycle():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda arg: seen.append("at10"))
    sim.schedule(11, lambda arg: seen.append("at11"))
    sim.run(until=10)
    assert seen == ["at10"]
    assert sim.now == 10


def test_run_until_cycle_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 100


def test_run_until_past_cycle_rejected():
    sim = Simulator()
    sim.run(until=50)
    with pytest.raises(SimulationError):
        sim.run(until=10)


def test_run_until_event():
    sim = Simulator()
    event = sim.event()
    sim.schedule(42, lambda arg: event.trigger("done"))
    sim.run(until=event)
    assert sim.now == 42
    assert event.value == "done"


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    event = sim.event()
    sim.schedule(1, lambda arg: None)
    with pytest.raises(DeadlockError):
        sim.run(until=event)


def test_run_until_invalid_argument():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run(until="tomorrow")


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter(_arg):
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1, reenter)
    sim.run()
    assert len(errors) == 1


def test_timer_event_fires_at_deadline():
    sim = Simulator()
    timer = sim.timer(17)
    sim.run(until=timer)
    assert sim.now == 17
    assert timer.value == 17


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_pending_counts_queued_callbacks():
    sim = Simulator()
    sim.schedule(1, lambda arg: None)
    sim.schedule(2, lambda arg: None)
    assert sim.pending == 2


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    seen = []

    def outer(_arg):
        seen.append(("outer", sim.now))
        sim.schedule(5, inner)

    def inner(_arg):
        seen.append(("inner", sim.now))

    sim.schedule(3, outer)
    sim.run()
    assert seen == [("outer", 3), ("inner", 8)]


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        seen = []
        for d in [4, 4, 2, 9, 2]:
            sim.schedule(d, lambda arg, d=d: seen.append((sim.now, d)))
        sim.run()
        return seen

    assert build() == build()
