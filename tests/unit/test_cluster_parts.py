"""Unit tests for cluster components: barrier, DMA, mailbox, workers."""

import pytest

from repro.cluster import Barrier, DmaEngine, Mailbox, WorkerCore
from repro.cluster.worker import split_among_cores
from repro.errors import ConfigError, SimulationError
from repro.kernels import DaxpyKernel, WorkSlice
from repro.sim import Simulator, ThroughputChannel


# ----------------------------------------------------------------------
# Barrier
# ----------------------------------------------------------------------
def test_barrier_releases_when_all_arrive():
    sim = Simulator()
    barrier = Barrier(sim, parties=3, latency=2)
    times = []

    def party(delay):
        yield delay
        yield from barrier.wait()
        times.append(sim.now)

    for delay in [5, 1, 9]:
        sim.spawn(party(delay))
    sim.run()
    assert times == [11, 11, 11]  # last arrival at 9, + 2 latency
    assert barrier.generation == 1


def test_barrier_is_reusable_across_generations():
    sim = Simulator()
    barrier = Barrier(sim, parties=2, latency=0)
    crossings = []

    def party(tag):
        for _round in range(3):
            gen = yield from barrier.wait()
            crossings.append((tag, gen, sim.now))
            yield 1

    sim.spawn(party("a"))
    sim.spawn(party("b"))
    sim.run()
    assert barrier.generation == 3
    generations = [g for _t, g, _c in crossings]
    assert sorted(generations) == [0, 0, 1, 1, 2, 2]


def test_barrier_waiting_count():
    sim = Simulator()
    barrier = Barrier(sim, parties=2)

    def one():
        yield from barrier.wait()

    sim.spawn(one())
    sim.run()  # drains: one party is parked forever
    assert barrier.waiting == 1


def test_barrier_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Barrier(sim, parties=0)
    with pytest.raises(SimulationError):
        Barrier(sim, parties=2, latency=-1)


# ----------------------------------------------------------------------
# DMA engine
# ----------------------------------------------------------------------
def make_dma(setup=4, width=64):
    sim = Simulator()
    read = ThroughputChannel(sim, width, name="read")
    write = ThroughputChannel(sim, width, name="write")
    dma = DmaEngine(sim, read, write, setup_cycles=setup)
    return sim, read, write, dma


def test_dma_transfer_in_timing():
    sim, _read, _write, dma = make_dma(setup=4, width=64)

    def body():
        yield from dma.transfer_in(640)  # 10 beats
        return sim.now

    proc = sim.spawn(body())
    sim.run()
    assert proc.value == 4 + 10


def test_dma_zero_bytes_is_free():
    sim, _read, _write, dma = make_dma()

    def body():
        yield from dma.transfer_in(0)
        yield from dma.transfer_out(0)
        return sim.now

    proc = sim.spawn(body())
    sim.run()
    assert proc.value == 0
    assert dma.transfers_in == 0


def test_dma_negative_bytes_rejected():
    sim, _read, _write, dma = make_dma()

    def body():
        yield from dma.transfer_in(-8)

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_two_dmas_contend_on_shared_channel():
    sim = Simulator()
    read = ThroughputChannel(sim, 64)
    write = ThroughputChannel(sim, 64)
    dma_a = DmaEngine(sim, read, write, setup_cycles=0)
    dma_b = DmaEngine(sim, read, write, setup_cycles=0)
    finishes = []

    def body(dma, tag):
        yield from dma.transfer_in(640)
        finishes.append((tag, sim.now))

    sim.spawn(body(dma_a, "a"))
    sim.spawn(body(dma_b, "b"))
    sim.run()
    assert finishes == [("a", 10), ("b", 20)]  # serialized on the channel


def test_dma_read_and_write_channels_are_independent():
    sim, _read, _write, dma = make_dma(setup=0)
    finishes = []

    def reader():
        yield from dma.transfer_in(640)
        finishes.append(("in", sim.now))

    def writer():
        yield from dma.transfer_out(640)
        finishes.append(("out", sim.now))

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    assert dict(finishes) == {"in": 10, "out": 10}  # full duplex


def test_dma_statistics():
    sim, _read, _write, dma = make_dma()

    def body():
        yield from dma.transfer_in(128)
        yield from dma.transfer_out(64)

    sim.spawn(body())
    sim.run()
    assert (dma.transfers_in, dma.transfers_out) == (1, 1)
    assert (dma.bytes_in, dma.bytes_out) == (128, 64)


def test_dma_negative_setup_rejected():
    sim = Simulator()
    chan = ThroughputChannel(sim, 64)
    with pytest.raises(SimulationError):
        DmaEngine(sim, chan, chan, setup_cycles=-1)


# ----------------------------------------------------------------------
# Mailbox
# ----------------------------------------------------------------------
def test_mailbox_ring_wakes_waiter_with_pointer():
    sim = Simulator()
    mailbox = Mailbox(sim, cluster_id=0)
    got = []

    def dm_core():
        pointer = yield from mailbox.wait_job()
        got.append((sim.now, pointer))

    sim.spawn(dm_core())
    sim.schedule(10, lambda arg: mailbox.write_register(0x00, 0xCAFE))
    sim.run()
    assert got == [(10, 0xCAFE)]


def test_mailbox_registers_readable():
    sim = Simulator()
    mailbox = Mailbox(sim, cluster_id=3)
    mailbox.write_register(0x00, 0x1234)
    assert mailbox.read_register(0x00) == 0x1234
    assert mailbox.read_register(0x08) == 1


def test_mailbox_unknown_register():
    from repro.errors import MemoryError_, ProtocolError
    mailbox = Mailbox(Simulator(), cluster_id=0)
    with pytest.raises(MemoryError_):
        mailbox.read_register(0x40)
    with pytest.raises(MemoryError_):
        mailbox.write_register(0x40, 1)
    with pytest.raises(ProtocolError):
        mailbox.write_register(0x08, 1)  # count register is read-only


def test_mailbox_counts_rings():
    sim = Simulator()
    mailbox = Mailbox(sim, cluster_id=0)
    mailbox.write_register(0x00, 1)
    mailbox.write_register(0x00, 2)
    assert mailbox.jobs_received == 2
    assert mailbox.job_ptr == 2


# ----------------------------------------------------------------------
# Worker cores & sub-slicing
# ----------------------------------------------------------------------
def test_worker_compute_timing():
    sim = Simulator()
    worker = WorkerCore(sim, cluster_id=0, core_id=0, wake_latency=2)
    kernel = DaxpyKernel()
    sub = WorkSlice(index=0, lo=0, hi=40)

    def body():
        yield from worker.compute(kernel, sub, n=1024)
        return sim.now

    proc = sim.spawn(body())
    sim.run()
    # wake 2 + setup 22 + ceil(2.6 * 40) = 2 + 22 + 104
    assert proc.value == 128
    assert worker.jobs_executed == 1
    assert worker.busy_cycles == 126


def test_worker_empty_slice_pays_only_wake():
    sim = Simulator()
    worker = WorkerCore(sim, 0, 0, wake_latency=2)

    def body():
        yield from worker.compute(DaxpyKernel(), WorkSlice(0, 5, 5), n=64)
        return sim.now

    proc = sim.spawn(body())
    sim.run()
    assert proc.value == 2


def test_worker_negative_wake_rejected():
    with pytest.raises(ConfigError):
        WorkerCore(Simulator(), 0, 0, wake_latency=-1)


def test_split_among_cores_preserves_cluster_range():
    work = WorkSlice(index=2, lo=100, hi=180)
    subs = split_among_cores(work, 8)
    assert len(subs) == 8
    assert subs[0].lo == 100
    assert subs[-1].hi == 180
    total = sum(s.elements for s in subs)
    assert total == work.elements
    for earlier, later in zip(subs, subs[1:]):
        assert earlier.hi == later.lo
