"""Unit tests for kernel functional and timing models."""

import math

import numpy
import pytest

from repro.errors import KernelError
from repro.kernels import (
    DaxpyKernel,
    GemvKernel,
    Kernel,
    KernelTiming,
    VecsumKernel,
    WorkSlice,
    get_kernel,
    kernel_names,
    register_kernel,
    split_range,
)


RNG = numpy.random.default_rng(1234)

ALL_KERNELS = [get_kernel(name) for name in kernel_names()]


# ----------------------------------------------------------------------
# split_range
# ----------------------------------------------------------------------
def test_split_range_even():
    slices = split_range(8, 4)
    assert [(s.lo, s.hi) for s in slices] == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_split_range_uneven_front_loads_remainder():
    slices = split_range(10, 4)
    assert [s.elements for s in slices] == [3, 3, 2, 2]


def test_split_range_more_parts_than_items():
    slices = split_range(2, 5)
    assert [s.elements for s in slices] == [1, 1, 0, 0, 0]
    assert slices[2].empty


def test_split_range_invalid():
    with pytest.raises(KernelError):
        split_range(-1, 2)
    with pytest.raises(KernelError):
        split_range(4, 0)


def test_work_slice_validation():
    with pytest.raises(KernelError):
        WorkSlice(index=0, lo=5, hi=4)
    with pytest.raises(KernelError):
        WorkSlice(index=0, lo=-1, hi=4)


# ----------------------------------------------------------------------
# KernelTiming
# ----------------------------------------------------------------------
def test_timing_zero_elements_cost_nothing():
    timing = KernelTiming(setup_cycles=20, cpe_num=13, cpe_den=5)
    assert timing.cycles(0) == 0


def test_timing_daxpy_rate():
    timing = DaxpyKernel.timing
    assert timing.cycles_per_element == pytest.approx(2.6)
    # 40 elements at 2.6 cpe = 104 cycles plus setup.
    assert timing.cycles(40) == timing.setup_cycles + 104


def test_timing_rounds_up_partial_elements():
    timing = KernelTiming(setup_cycles=0, cpe_num=13, cpe_den=5)
    assert timing.cycles(1) == 3  # ceil(2.6)


def test_timing_validation():
    with pytest.raises(KernelError):
        KernelTiming(setup_cycles=-1, cpe_num=1, cpe_den=1)
    with pytest.raises(KernelError):
        KernelTiming(setup_cycles=0, cpe_num=0, cpe_den=1)
    with pytest.raises(KernelError):
        KernelTiming(setup_cycles=0, cpe_num=1, cpe_den=0)
    timing = KernelTiming(setup_cycles=0, cpe_num=1, cpe_den=1)
    with pytest.raises(KernelError):
        timing.cycles(-1)


# ----------------------------------------------------------------------
# Functional correctness against NumPy oracles
# ----------------------------------------------------------------------
def reference_oracle(kernel, n, scalars, inputs, num_slices):
    """Independent NumPy implementations of every kernel."""
    name = kernel.name
    if name == "daxpy":
        return {"y": scalars["a"] * inputs["x"] + inputs["y"]}
    if name == "saxpy":
        a = numpy.float32(scalars["a"])
        x32 = inputs["x"].astype(numpy.float32)
        y32 = inputs["y"].astype(numpy.float32)
        return {"y": (a * x32 + y32).astype(numpy.float64)}
    if name == "axpby":
        return {"y": scalars["a"] * inputs["x"] + scalars["b"] * inputs["y"]}
    if name == "memcpy":
        return {"y": inputs["x"].copy()}
    if name == "scale":
        return {"y": scalars["a"] * inputs["x"]}
    if name == "vecsum":
        slices = split_range(n, num_slices)
        return {"partials": numpy.array(
            [inputs["x"][s.lo:s.hi].sum() for s in slices])}
    if name == "dot":
        slices = split_range(n, num_slices)
        return {"partials": numpy.array(
            [numpy.dot(inputs["x"][s.lo:s.hi], inputs["y"][s.lo:s.hi])
             for s in slices])}
    if name == "gemv":
        return {"y": inputs["A"].reshape(n, n) @ inputs["x"]}
    if name == "relu":
        return {"y": numpy.maximum(inputs["x"], 0.0)}
    if name == "stencil3":
        x = inputs["x"]
        padded = numpy.concatenate(([x[0]], x, [x[-1]]))
        return {"y": (scalars["a"] * padded[:-2]
                      + scalars["b"] * padded[1:-1]
                      + scalars["c"] * padded[2:])}
    raise AssertionError(f"no oracle for kernel {name}")


def default_scalars(kernel):
    return {name: 1.5 + 0.25 * i for i, name in enumerate(kernel.scalar_names)}


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("n,num_slices", [(64, 1), (64, 4), (63, 4), (7, 8)])
def test_reference_matches_oracle(kernel, n, num_slices):
    scalars = default_scalars(kernel)
    inputs = kernel.make_inputs(n, RNG)
    got = kernel.reference(n, scalars, inputs, num_slices)
    want = reference_oracle(kernel, n, scalars, inputs, num_slices)
    assert set(got) == set(want)
    for name in got:
        numpy.testing.assert_allclose(got[name], want[name], rtol=1e-12)


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_slices_cover_output_exactly_once(kernel):
    """Union of slice fragments covers each output index exactly once."""
    n, num_slices = 50, 7
    scalars = default_scalars(kernel)
    inputs = kernel.make_inputs(n, RNG)
    coverage = {
        name: numpy.zeros(kernel.output_length(name, n, num_slices), dtype=int)
        for name in kernel.output_names
    }
    for work in split_range(n, num_slices):
        if work.empty:
            continue
        for name, (start, values) in kernel.compute_slice(
                n, scalars, inputs, work).items():
            coverage[name][start:start + len(values)] += 1
    for name, counts in coverage.items():
        assert (counts == 1).all(), f"{kernel.name}.{name} coverage {counts}"


# ----------------------------------------------------------------------
# Traffic and timing sanity across all kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_slice_output_bytes_partition_law(kernel):
    """Element-wise kernels: output bytes are additive over a partition.

    Reduction kernels instead emit exactly one element per non-empty
    slice, so splitting finer *increases* the write-back traffic.
    """
    n = 96
    whole_out = kernel.slice_bytes_out(0, n, n)
    slices = split_range(n, 6)
    parts_out = sum(kernel.slice_bytes_out(s.lo, s.hi, n) for s in slices)
    if kernel.output_length(kernel.output_names[0], n, 6) == n:
        assert parts_out == whole_out
    else:
        nonempty = sum(1 for s in slices if not s.empty)
        assert parts_out == nonempty * 8


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_empty_slice_moves_no_data(kernel):
    assert kernel.slice_bytes_in(10, 10, 64) == 0
    assert kernel.slice_bytes_out(10, 10, 64) == 0
    assert kernel.compute_cycles(0, 64) == 0


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_compute_cycles_monotone_in_elements(kernel):
    n = 256
    previous = 0
    for elements in [1, 2, 8, 32, 128, 256]:
        cycles = kernel.compute_cycles(elements, n)
        assert cycles >= previous
        previous = cycles


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_validate_catches_bad_requests(kernel):
    with pytest.raises(KernelError):
        kernel.validate(0, default_scalars(kernel))
    with pytest.raises(KernelError):
        kernel.validate(16, {"bogus_scalar": 1.0})
    kernel.validate(16, default_scalars(kernel))  # and the good case passes


def test_daxpy_traffic_matches_paper_accounting():
    kernel = DaxpyKernel()
    n = 1024
    total_in = sum(kernel.slice_bytes_in(s.lo, s.hi, n)
                   for s in split_range(n, 8))
    total_out = sum(kernel.slice_bytes_out(s.lo, s.hi, n)
                    for s in split_range(n, 8))
    assert total_in == 16 * n   # x and y in: the N/4 term at 64 B/cycle
    assert total_out == 8 * n


def test_gemv_cycles_scale_with_n():
    kernel = GemvKernel()
    small = kernel.compute_cycles(4, 64)
    large = kernel.compute_cycles(4, 128)
    assert large > small
    assert kernel.compute_cycles(4, 128) - kernel.timing.setup_cycles == \
        math.ceil(3 * 4 * 128 / 2)


def test_gemv_input_lengths():
    kernel = GemvKernel()
    assert kernel.input_length("A", 16) == 256
    assert kernel.input_length("x", 16) == 16


def test_vecsum_output_length_is_slice_count():
    kernel = VecsumKernel()
    assert kernel.output_length("partials", 1000, 8) == 8


def test_unknown_buffer_names_rejected():
    kernel = DaxpyKernel()
    with pytest.raises(KernelError):
        kernel.input_length("z", 8)
    with pytest.raises(KernelError):
        kernel.output_length("z", 8, 1)
    with pytest.raises(KernelError):
        kernel.output_alias("z")


def test_tcdm_footprint_in_place_vs_out_of_place():
    daxpy = get_kernel("daxpy")   # in place: footprint = inputs only
    memcpy = get_kernel("memcpy")  # out of place: inputs + outputs
    assert daxpy.slice_tcdm_bytes(0, 100, 100) == 16 * 100
    assert memcpy.slice_tcdm_bytes(0, 100, 100) == 16 * 100
    scale = get_kernel("scale")
    assert scale.slice_tcdm_bytes(0, 100, 100) == 16 * 100


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_contains_all_kernels():
    names = kernel_names()
    assert "daxpy" in names
    assert len(names) == 10


def test_get_unknown_kernel_lists_available():
    with pytest.raises(KernelError, match="daxpy"):
        get_kernel("fft")


def test_register_duplicate_rejected():
    with pytest.raises(KernelError):
        register_kernel(DaxpyKernel())


def test_register_unnamed_rejected():
    class Nameless(Kernel):
        def slice_bytes_in(self, lo, hi, n):
            return 0

        def slice_bytes_out(self, lo, hi, n):
            return 0

        def compute_slice(self, n, scalars, inputs, work):
            return {}

    with pytest.raises(KernelError):
        register_kernel(Nameless())


def test_flops_accounting():
    assert get_kernel("daxpy").flops(100) == 200
    assert get_kernel("gemv").flops(10) == 200
    assert get_kernel("memcpy").flops(100) == 0
