"""Unit tests for the analytic runtime model (Eq. 1, generalized)."""

import math

import pytest

from repro.core.model import OffloadModel, PAPER_DAXPY_MODEL
from repro.errors import ModelError


def test_paper_model_matches_eq1():
    # Eq. 1 at (M=8, N=1024): 367 + 256 + 2.6*1024/(8*8) = 664.6
    assert PAPER_DAXPY_MODEL.predict(8, 1024) == pytest.approx(664.6)


def test_predict_structure():
    model = OffloadModel(t0=100, mem_coeff=0.5, compute_coeff=2.0,
                         dispatch_coeff=3.0)
    assert model.predict(4, 100) == pytest.approx(100 + 12 + 50 + 50)


def test_predict_validation():
    model = PAPER_DAXPY_MODEL
    with pytest.raises(ModelError):
        model.predict(0, 100)
    with pytest.raises(ModelError):
        model.predict(4, -1)


def test_negative_coefficients_rejected():
    with pytest.raises(ModelError):
        OffloadModel(t0=-1, mem_coeff=0, compute_coeff=0)
    with pytest.raises(ModelError):
        OffloadModel(t0=0, mem_coeff=-0.1, compute_coeff=0)


def test_serial_and_parallel_split():
    model = PAPER_DAXPY_MODEL
    n = 1024
    assert model.serial_cycles(n) == pytest.approx(367 + 256)
    assert model.parallel_cycles(n) == pytest.approx(332.8)
    assert model.predict(1, n) == pytest.approx(
        model.serial_cycles(n) + model.parallel_cycles(n))


def test_asymptotic_runtime():
    assert PAPER_DAXPY_MODEL.asymptotic_runtime(1024) == pytest.approx(623)
    with_dispatch = OffloadModel(t0=100, mem_coeff=0.25, compute_coeff=0.3,
                                 dispatch_coeff=5.0)
    assert with_dispatch.asymptotic_runtime(1024) == math.inf


def test_best_m_without_dispatch_term_is_max():
    assert PAPER_DAXPY_MODEL.best_m(1024, 32) == 32


def test_best_m_with_dispatch_term_is_interior():
    model = OffloadModel(t0=367, mem_coeff=0.25, compute_coeff=0.325,
                         dispatch_coeff=11.0)
    best = model.best_m(1024, 32)
    # sqrt(0.325*1024/11) = 5.5: the optimum is 5 or 6, well inside.
    assert best in (5, 6)
    assert model.predict(best, 1024) <= model.predict(32, 1024)
    assert model.predict(best, 1024) <= model.predict(1, 1024)


def test_best_m_respects_fabric_limit():
    model = OffloadModel(t0=0, mem_coeff=0, compute_coeff=1.0,
                         dispatch_coeff=1e-9)
    assert model.best_m(10_000, 8) == 8
    with pytest.raises(ModelError):
        model.best_m(100, 0)


def test_speedup_is_relative_to_single_cluster():
    model = PAPER_DAXPY_MODEL
    assert model.speedup(1, 1024) == pytest.approx(1.0)
    assert model.speedup(32, 1024) > 1.4


def test_fit_recovers_exact_synthetic_model():
    truth = OffloadModel(t0=250, mem_coeff=0.375, compute_coeff=0.45)
    points = [(m, n, truth.predict(m, n))
              for m in (1, 2, 4, 8, 16, 32) for n in (256, 512, 1024)]
    fitted = OffloadModel.fit(points)
    assert fitted.t0 == pytest.approx(250, abs=1e-6)
    assert fitted.mem_coeff == pytest.approx(0.375, abs=1e-9)
    assert fitted.compute_coeff == pytest.approx(0.45, abs=1e-9)
    assert fitted.dispatch_coeff == 0.0


def test_fit_recovers_dispatch_term():
    truth = OffloadModel(t0=300, mem_coeff=0.25, compute_coeff=0.325,
                         dispatch_coeff=11.0)
    points = [(m, n, truth.predict(m, n))
              for m in (1, 2, 4, 8, 16, 32) for n in (256, 512, 1024)]
    fitted = OffloadModel.fit(points, include_dispatch_term=True)
    assert fitted.dispatch_coeff == pytest.approx(11.0, abs=1e-6)


def test_fit_needs_enough_points():
    with pytest.raises(ModelError):
        OffloadModel.fit([(1, 256, 500.0), (2, 256, 400.0)])


def test_fit_rejects_degenerate_grid():
    # Constant N and M: columns are collinear.
    points = [(4, 256, 500.0 + i) for i in range(10)]
    with pytest.raises(ModelError, match="degenerate"):
        OffloadModel.fit(points)


def test_fit_rejects_nonpositive_m():
    with pytest.raises(ModelError):
        OffloadModel.fit([(0, 256, 1.0), (1, 256, 1.0), (2, 512, 1.0)])


def test_fit_clamps_tiny_negative_noise():
    truth = OffloadModel(t0=100, mem_coeff=0.0, compute_coeff=1.0)
    points = [(m, n, truth.predict(m, n) + 0.01)
              for m in (1, 2, 4) for n in (64, 128, 256)]
    fitted = OffloadModel.fit(points)
    assert fitted.mem_coeff >= 0.0


def test_describe_includes_all_terms():
    text = OffloadModel(t0=367, mem_coeff=0.25, compute_coeff=0.325,
                        dispatch_coeff=11, label="x").describe()
    assert "367" in text and "N/M" in text and "*M" in text and "[x]" in text
    no_dispatch = PAPER_DAXPY_MODEL.describe()
    assert "*M" not in no_dispatch.replace("N/M", "")


# ----------------------------------------------------------------------
# Per-tile-class model fitting
# ----------------------------------------------------------------------

def _synthetic_sweep(model, n_values=(256, 512, 1024), m_values=(1, 2, 4)):
    return [(m, n, model.predict(m, n))
            for m in m_values for n in n_values]


def test_fit_class_models_recovers_each_class():
    from repro.core.model import fit_class_models
    slow = OffloadModel(t0=300, mem_coeff=0.25, compute_coeff=0.45)
    fast = OffloadModel(t0=600, mem_coeff=0.25, compute_coeff=0.28)
    fits = fit_class_models({"snitch": _synthetic_sweep(slow),
                             "vecwide": _synthetic_sweep(fast)})
    assert set(fits) == {"snitch", "vecwide"}
    assert fits["snitch"].model.t0 == pytest.approx(300, abs=1.0)
    assert fits["vecwide"].model.compute_coeff == pytest.approx(0.28,
                                                               abs=0.01)
    for fit in fits.values():
        assert fit.mape_percent < 0.1  # noiseless data fits exactly
        assert fit.num_points == 9
        assert fit.tile_class in fit.describe()
        assert "MAPE" in fit.describe()


def test_fit_class_models_names_the_failing_class():
    from repro.core.model import fit_class_models
    good = _synthetic_sweep(PAPER_DAXPY_MODEL)
    with pytest.raises(ModelError, match="tile class 'broken'"):
        fit_class_models({"snitch": good, "broken": good[:2]})
