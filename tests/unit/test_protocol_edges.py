"""Edge-case tests for protocol internals and accounting corners."""

import numpy
import pytest

from repro import abi
from repro.core.decision import decide_offload, HostExecutionModel
from repro.core.model import PAPER_DAXPY_MODEL
from repro.core.offload import offload, offload_daxpy
from repro.energy import EnergyMeter
from repro.errors import OffloadError
from repro.kernels import get_kernel
from repro.runtime.api import make_runtime
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


# ----------------------------------------------------------------------
# Concurrent-program argument validation (direct, without the core API)
# ----------------------------------------------------------------------
def test_concurrent_program_rejects_zero_jobs():
    runtime = make_runtime(ext_system(), "extended")
    with pytest.raises(OffloadError, match="zero jobs"):
        runtime.concurrent_offload_program([], None, {})


def test_concurrent_program_amo_needs_one_flag_per_job():
    system = ext_system()
    runtime = make_runtime(system, "baseline")
    desc = abi.JobDescriptor(
        kernel_name="memcpy", n=8, num_clusters=1,
        sync_mode=abi.SYNC_MODE_AMO, completion_addr=0x8000_0000,
        scalars={}, input_addrs={"x": 0x8000_0100},
        output_addrs={"y": 0x8000_0200})
    with pytest.raises(OffloadError, match="one flag address per job"):
        runtime.concurrent_offload_program([(desc, 0x8000_0300)], [], {})


# ----------------------------------------------------------------------
# SAXPY semantics: fp32 rounding is architecturally visible
# ----------------------------------------------------------------------
def test_saxpy_rounds_to_single_precision():
    # A value that fp32 cannot represent exactly.
    x = numpy.array([1.0])
    y = numpy.array([1e-9])
    result = offload(ext_system(), "saxpy", 1, 1, scalars={"a": 1.0},
                     inputs={"x": x, "y": y})
    got = result.outputs["y"][0]
    assert got == numpy.float32(numpy.float32(1.0) + numpy.float32(1e-9))
    assert got != 1.0 + 1e-9  # fp64 would have kept the epsilon


# ----------------------------------------------------------------------
# Energy meter windowing corners
# ----------------------------------------------------------------------
def test_energy_meter_restart_after_stop():
    system = ext_system()
    meter = EnergyMeter(system)
    meter.start()
    offload_daxpy(system, n=128, num_clusters=2)
    meter.stop()
    # Restarting measures only new work.
    meter.start()
    report = meter.stop()
    assert report.window_cycles == 0
    assert report.total == 0.0


def test_energy_meter_window_spanning_two_offloads():
    system = ext_system()
    meter = EnergyMeter(system)
    meter.start()
    offload_daxpy(system, n=128, num_clusters=2)
    offload_daxpy(system, n=128, num_clusters=2)
    double = meter.stop()

    single_system = ext_system()
    meter = EnergyMeter(single_system)
    meter.start()
    offload_daxpy(single_system, n=128, num_clusters=2)
    single = meter.stop()
    assert double.total == pytest.approx(2 * single.total, rel=1e-6)


# ----------------------------------------------------------------------
# Decision reason strings and tie-breaking
# ----------------------------------------------------------------------
def test_decision_reason_mentions_deadline():
    decision = decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(),
                              n=2048, t_max=2000.0)
    assert "t_max" in decision.reason


def test_decision_prefers_host_on_exact_tie():
    # Construct a tie: pick N where host == some offload width is
    # impossible exactly, so instead check the tie-break rule directly:
    # candidates are sorted by (cycles, clusters); the host entry has
    # 0 clusters and wins ties.
    host = HostExecutionModel(cycles_per_element=0.0, setup_cycles=367.0)
    from repro.core.model import OffloadModel
    model = OffloadModel(t0=367.0, mem_coeff=0.0, compute_coeff=0.0)
    decision = decide_offload(model, host, n=100)
    assert not decision.offload


# ----------------------------------------------------------------------
# Host primitives accounting
# ----------------------------------------------------------------------
def test_host_retired_operations_counts_primitives():
    system = ext_system()
    host = system.host

    def program():
        yield from host.execute(1)
        yield from host.store(0x8000_0000, 1)
        yield from host.load(0x8000_0000)

    system.host.run_program(program())
    system.run()
    assert host.retired_operations == 3


def test_host_slept_cycles_accumulate_over_offloads():
    system = ext_system()
    offload_daxpy(system, n=512, num_clusters=2)
    first = system.host.slept_cycles
    assert first > 0
    offload_daxpy(system, n=512, num_clusters=2)
    assert system.host.slept_cycles > first


# ----------------------------------------------------------------------
# Offload result metadata
# ----------------------------------------------------------------------
def test_offload_result_fields_are_consistent():
    result = offload_daxpy(ext_system(), n=256, num_clusters=4)
    assert result.kernel_name == "daxpy"
    assert result.n == 256
    assert result.num_clusters == 4
    assert result.variant == "extended"
    assert result.runtime_cycles == result.end_cycle - result.start_cycle
    assert result.trace.total == result.runtime_cycles


def test_gemv_rejects_double_buffering_via_tcdm_floor():
    """GEMV is element-wise in outputs so dbuf is allowed in principle,
    but a chunk floor that cannot pair-fit fails loudly at runtime."""
    kernel = get_kernel("gemv")
    assert kernel.output_length("y", 64, 4) == 64  # element-wise outputs
    result = offload(ext_system(), "gemv", 64, 4,
                     exec_mode="double_buffered")
    assert result.verified is True  # small case fits and works
