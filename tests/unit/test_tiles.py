"""Unit tests for tile classes, groups and fabric validation.

Includes the PR's bugfix sweep: every way to misconfigure a fabric —
zero tiles in a group, a blown budget, an unknown class name, a rated
class missing a kernel — must raise :class:`ConfigError` naming the
offending group/class at configuration time, not fail deep inside a
simulation.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.kernels.base import KernelTiming
from repro.soc.config import SoCConfig
from repro.soc.tiles import (
    DEFAULT_TILE_CLASS,
    SNITCH,
    TILE_CLASSES,
    VECWIDE,
    TileClass,
    TileGroup,
    get_tile_class,
)


# ----------------------------------------------------------------------
# TileClass validation and resolution
# ----------------------------------------------------------------------

def test_default_class_inherits_everything():
    assert SNITCH.is_default
    assert SNITCH.timing_for("daxpy") is None  # "use the kernel's own"


def test_vecwide_is_registered_and_rated():
    assert not VECWIDE.is_default
    timing = VECWIDE.timing_for("daxpy")
    assert timing == KernelTiming(setup_cycles=40, cpe_num=13, cpe_den=20)
    assert get_tile_class("vecwide") is VECWIDE
    assert DEFAULT_TILE_CLASS in TILE_CLASSES


def test_tile_class_rejects_empty_name():
    with pytest.raises(ConfigError, match="non-empty string"):
        TileClass(name="")


def test_tile_class_rejects_non_positive_structural_fields():
    with pytest.raises(ConfigError, match="cores_per_tile"):
        TileClass(name="bad", cores_per_tile=0)
    with pytest.raises(ConfigError, match="tcdm_bytes"):
        TileClass(name="bad", tcdm_bytes=-1)


def test_tile_class_rejects_negative_latency_and_cost():
    with pytest.raises(ConfigError, match="wake_latency"):
        TileClass(name="bad", wake_latency=-1)
    with pytest.raises(ConfigError, match="tile_power"):
        TileClass(name="bad", tile_power=-0.5)
    with pytest.raises(ConfigError, match="area_mm2"):
        TileClass(name="bad", area_mm2=-1.0)


def test_tile_class_rejects_malformed_rate_entries():
    with pytest.raises(ConfigError, match="malformed kernel rate"):
        TileClass(name="bad", kernel_rates=(("daxpy", (1, 2)),))
    with pytest.raises(ConfigError, match="duplicate kernel rate"):
        TileClass(name="bad", kernel_rates=(("daxpy", (0, 1, 1)),
                                            ("daxpy", (0, 2, 1))))
    with pytest.raises(ConfigError, match="invalid rate"):
        TileClass(name="bad", kernel_rates=(("daxpy", (0, 0, 1)),))


def test_resolve_tile_fills_inherited_fields_from_config():
    config = SoCConfig.extended(num_clusters=4)
    resolved = config.resolve_tile(SNITCH)
    assert resolved.cores_per_tile == config.cores_per_cluster
    assert resolved.dma_setup_cycles == config.dma_setup_cycles
    override = config.resolve_tile(TileClass(name="x", cores_per_tile=3))
    assert override.cores_per_tile == 3
    assert override.tcdm_bytes == config.tcdm_bytes


# ----------------------------------------------------------------------
# Bugfix sweep: misconfigured fabrics fail loudly at config time
# ----------------------------------------------------------------------

def test_zero_tile_group_names_the_group():
    with pytest.raises(ConfigError, match=r"'empty' \(class 'snitch'\)"):
        TileGroup(name="empty", tile=SNITCH, count=0)


def test_unknown_tile_class_name_lists_available():
    with pytest.raises(ConfigError,
                       match="unknown tile class 'bigcore'.*snitch"):
        TileGroup(name="g", tile="bigcore", count=2)


def test_area_budget_exceeded_names_largest_contributor():
    groups = [TileGroup(name="little", tile=SNITCH, count=2),
              TileGroup(name="big", tile=VECWIDE, count=2)]
    with pytest.raises(ConfigError,
                       match=r"area_budget_mm2.*largest contributor is "
                             r"group 'big' \(class 'vecwide'"):
        SoCConfig.with_fabric(groups, area_budget_mm2=5.0)


def test_power_budget_exceeded_names_largest_contributor():
    groups = [TileGroup(name="only", tile=VECWIDE, count=4)]
    with pytest.raises(ConfigError,
                       match=r"power_budget_mw.*group 'only'"):
        SoCConfig.with_fabric(groups, power_budget_mw=100.0)


def test_budget_applies_to_the_implicit_homogeneous_group():
    with pytest.raises(ConfigError, match="area_budget_mm2"):
        SoCConfig.extended(num_clusters=8, area_budget_mm2=4.0)
    SoCConfig.extended(num_clusters=4, area_budget_mm2=4.0)  # exact fit ok


def test_missing_kernel_rate_raises_before_simulation():
    from repro.core.offload import offload
    from repro.soc.manticore import ManticoreSystem

    gappy = dataclasses.replace(VECWIDE, name="gappy",
                                kernel_rates=VECWIDE.kernel_rates[:1])
    config = SoCConfig.with_fabric(
        [TileGroup(name="g", tile=gappy, count=2)],
        multicast=True, hw_sync=True)
    with pytest.raises(ConfigError, match="'gappy' has no compute rate "
                                          "for kernel 'daxpy'"):
        offload(ManticoreSystem(config), "daxpy", 64, 2, tile_group="g")


def test_fabric_counts_must_sum_to_num_clusters():
    with pytest.raises(ConfigError, match="must sum to the cluster count"):
        SoCConfig(num_clusters=8,
                  fabric=(TileGroup(name="g", tile=SNITCH, count=4),))


def test_with_fabric_rejects_explicit_num_clusters_and_empty():
    with pytest.raises(ConfigError, match="derives num_clusters"):
        SoCConfig.with_fabric([TileGroup(name="g", tile=SNITCH, count=2)],
                              num_clusters=2)
    with pytest.raises(ConfigError, match="at least one tile group"):
        SoCConfig.with_fabric([])


def test_duplicate_group_name_rejected():
    with pytest.raises(ConfigError, match="duplicate tile group name"):
        SoCConfig.with_fabric([TileGroup(name="g", tile=SNITCH, count=2),
                               TileGroup(name="g", tile=SNITCH, count=2)])


# ----------------------------------------------------------------------
# Fabric resolution: spans, lookups, mixed-span detection
# ----------------------------------------------------------------------

def test_groups_place_contiguous_spans():
    config = SoCConfig.with_fabric(
        [TileGroup(name="little", tile=SNITCH, count=3),
         TileGroup(name="big", tile=VECWIDE, count=2)])
    little, big = config.groups()
    assert (little.start, little.count) == (0, 3)
    assert (big.start, big.count) == (3, 2)
    assert config.tile_group("big").tile.class_name == "vecwide"
    with pytest.raises(ConfigError,
                       match="unknown tile group 'huge'.*little, big"):
        config.tile_group("huge")


def test_span_tile_detects_mixed_spans():
    config = SoCConfig.with_fabric(
        [TileGroup(name="little", tile=SNITCH, count=2),
         TileGroup(name="big", tile=VECWIDE, count=2)])
    assert config.span_tile(0, 2).class_name == "snitch"
    assert config.span_tile(2, 2).class_name == "vecwide"
    assert config.span_tile(0, 4) is None  # crosses classes
    with pytest.raises(ConfigError, match="invalid cluster span"):
        config.span_tile(3, 4)


def test_homogeneous_config_resolves_to_one_implicit_group(monkeypatch):
    monkeypatch.delenv("REPRO_EXPLICIT_FABRIC", raising=False)
    config = SoCConfig.extended(num_clusters=4)
    (group,) = config.groups()
    assert group.count == 4 and group.start == 0
    assert group.tile.class_name == DEFAULT_TILE_CLASS
    # under the gate the same config expands to per-cluster groups
    monkeypatch.setenv("REPRO_EXPLICIT_FABRIC", "1")
    explicit = config.groups()
    assert len(explicit) == 4
    assert [g.start for g in explicit] == [0, 1, 2, 3]
    assert all(g.count == 1 and g.tile.class_name == DEFAULT_TILE_CLASS
               for g in explicit)
