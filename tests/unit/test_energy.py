"""Unit tests for the energy-accounting subsystem."""

import pytest

from repro.core.offload import offload_daxpy, run_on_host
from repro.energy import (
    DEFAULT_POWER_BUDGET,
    EnergyBreakdown,
    EnergyMeter,
    PowerBudget,
    measure_offload_energy,
)
from repro.errors import ConfigError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def test_budget_rejects_negative_power():
    with pytest.raises(ConfigError):
        PowerBudget(host_active=-1.0)


def test_stop_before_start_rejected():
    meter = EnergyMeter(ext_system())
    with pytest.raises(ConfigError):
        meter.stop()


def test_empty_window_costs_nothing():
    system = ext_system()
    meter = EnergyMeter(system)
    meter.start()
    report = meter.stop()
    assert report.window_cycles == 0
    assert report.total == 0.0


def test_breakdown_totals_and_render():
    breakdown = EnergyBreakdown(window_cycles=10, host=1.0, workers=2.0,
                                dm_cores=3.0, memory=4.0, interconnect=5.0,
                                uncore=6.0)
    assert breakdown.total == 21.0
    text = breakdown.render()
    assert "total" in text and "pJ" in text


def test_offload_energy_is_positive_and_componentized():
    breakdown, cycles = measure_offload_energy(
        SoCConfig.extended(num_clusters=8), "daxpy", 512, 4)
    assert cycles > 0
    for component in ("host", "workers", "dm_cores", "memory",
                      "interconnect", "uncore"):
        assert getattr(breakdown, component) > 0.0


def test_host_sleeps_under_hw_sync_but_polls_in_baseline():
    ext = ext_system()
    meter = EnergyMeter(ext)
    meter.start()
    offload_daxpy(ext, n=1024, num_clusters=4)
    ext_report = meter.stop()
    assert ext.host.slept_cycles > 0

    base = ManticoreSystem(SoCConfig.baseline(num_clusters=8))
    meter = EnergyMeter(base)
    meter.start()
    offload_daxpy(base, n=1024, num_clusters=4)
    base_report = meter.stop()
    assert base.host.slept_cycles == 0
    # Sleeping host + fewer doorbells: the extended design costs less.
    assert ext_report.host < base_report.host
    assert ext_report.total < base_report.total


def test_memory_energy_proportional_to_traffic():
    small, _ = measure_offload_energy(
        SoCConfig.extended(num_clusters=8), "daxpy", 256, 4)
    large, _ = measure_offload_energy(
        SoCConfig.extended(num_clusters=8), "daxpy", 1024, 4)
    assert large.memory == pytest.approx(4 * small.memory)


def test_meter_windows_are_additive():
    system = ext_system()
    meter = EnergyMeter(system)
    meter.start()
    offload_daxpy(system, n=256, num_clusters=2)
    first = meter.stop()
    meter.start()
    offload_daxpy(system, n=256, num_clusters=2)
    second = meter.stop()
    # Identical work in each window -> identical energy.
    assert second.total == pytest.approx(first.total)


def test_host_execution_energy_has_no_cluster_activity():
    system = ext_system()
    meter = EnergyMeter(system)
    meter.start()
    run_on_host(system, "daxpy", 256)
    report = meter.stop()
    assert report.memory == 0.0
    # Only idle power on the fabric (8 clusters x 8 worker cores).
    assert report.workers == pytest.approx(
        DEFAULT_POWER_BUDGET.worker_idle * 64 * report.window_cycles)


def test_custom_budget_scales_components():
    cheap = PowerBudget(host_active=1.0, host_idle=0.0, worker_active=0.0,
                        worker_idle=0.0, dm_core_active=0.0,
                        dm_core_idle=0.0, memory_per_byte=0.0,
                        noc_per_transaction=0.0, uncore_static=0.0)
    breakdown, cycles = measure_offload_energy(
        SoCConfig.baseline(num_clusters=8), "daxpy", 256, 2, budget=cheap)
    # Baseline host never sleeps: host energy == active power x window.
    assert breakdown.total == pytest.approx(breakdown.host)
    assert breakdown.host == pytest.approx(1.0 * breakdown.window_cycles)
