"""Unit tests for the fabric-level start barrier."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim import Simulator
from repro.soc.fabricbarrier import FabricBarrier


def test_release_after_last_arrival_plus_latencies():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=6, release_latency=6)
    released = []

    def cluster(delay):
        yield delay
        yield from barrier.arrive(3)
        released.append(sim.now)

    for delay in [0, 10, 40]:
        sim.spawn(cluster(delay))
    sim.run()
    # Last arrival lands at 40 + 6; release wave +6 more.
    assert released == [52, 52, 52]
    assert barrier.generations == 1


def test_single_party_barrier_costs_constant():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=6, release_latency=6)

    def cluster():
        yield from barrier.arrive(1)
        return sim.now

    proc = sim.spawn(cluster())
    sim.run()
    assert proc.value == 12


def test_generations_are_sequential():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=0, release_latency=0)

    def cluster():
        for _round in range(2):
            yield from barrier.arrive(2)
            yield 1

    sim.spawn(cluster())
    sim.spawn(cluster())
    sim.run()
    assert barrier.generations == 2


def test_mismatched_party_counts_rejected():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=0, release_latency=0)

    def cluster(parties):
        yield from barrier.arrive(parties)

    sim.spawn(cluster(2))
    sim.spawn(cluster(3))
    with pytest.raises(SimulationError):
        sim.run()


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ConfigError):
        FabricBarrier(sim, arrival_latency=-1)
    barrier = FabricBarrier(sim)

    def cluster():
        yield from barrier.arrive(0)

    sim.spawn(cluster())
    with pytest.raises(SimulationError):
        sim.run()


def test_waiting_counter():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=0, release_latency=0)

    def cluster():
        yield from barrier.arrive(2)

    sim.spawn(cluster())
    sim.run()
    assert barrier.waiting() == 1
    assert barrier.waiting(group=5) == 0
    assert barrier.open_groups == (0,)


def test_groups_are_independent():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=0, release_latency=0)
    released = []

    def cluster(group, parties, delay, tag):
        yield delay
        yield from barrier.arrive(parties, group=group)
        released.append((tag, sim.now))

    # Group 0 (2 parties) completes at 10; group 16 (1 party) at 3.
    sim.spawn(cluster(0, 2, 0, "a0"))
    sim.spawn(cluster(0, 2, 10, "a1"))
    sim.spawn(cluster(16, 1, 3, "b0"))
    sim.run()
    assert dict(released) == {"b0": 3, "a0": 10, "a1": 10}
    assert barrier.generations == 2


def test_concurrent_groups_with_different_party_counts():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=0, release_latency=0)

    def cluster(group, parties):
        yield from barrier.arrive(parties, group=group)

    for _ in range(3):
        sim.spawn(cluster(0, 3))
    for _ in range(2):
        sim.spawn(cluster(7, 2))
    sim.run()
    assert barrier.generations == 2
    assert barrier.open_groups == ()


def test_negative_group_rejected():
    sim = Simulator()
    barrier = FabricBarrier(sim, arrival_latency=0, release_latency=0)

    def cluster():
        yield from barrier.arrive(1, group=-1)

    sim.spawn(cluster())
    with pytest.raises(SimulationError):
        sim.run()
