"""Unit tests for the control interconnect timing and routing."""

import pytest

from repro.errors import ConfigError
from repro.mem import AddressMap, MainMemory, Region
from repro.noc import Interconnect, NocParams, Transaction, TransactionKind
from repro.noc import multicast_targets
from repro.sim import Simulator


BASE = 0x8000_0000

PARAMS = NocParams(
    request_latency=6,
    response_latency=6,
    store_occupancy=8,
    load_occupancy=2,
    cluster_port_occupancy=1,
    multicast_enabled=True,
    multicast_tree_latency=3,
    amo_service_cycles=2,
)


def make_noc(params=PARAMS, num_clusters=4):
    sim = Simulator()
    amap = AddressMap()
    mem = MainMemory(size_bytes=4096, base=BASE)
    amap.add(Region("dram", mem.base, mem.size_bytes, mem))
    noc = Interconnect(sim, amap, params, num_clusters=num_clusters)
    return sim, amap, mem, noc


def test_host_write_milestone_timing():
    sim, _amap, mem, noc = make_noc()
    handle = noc.host_write(BASE, 42)
    sim.run(until=handle.issued)
    assert sim.now == PARAMS.store_occupancy
    assert mem.read_word(BASE) == 0  # not yet delivered
    sim.run(until=handle.delivered)
    assert sim.now == PARAMS.store_occupancy + PARAMS.request_latency
    assert mem.read_word(BASE) == 42
    sim.run(until=handle.acked)
    assert sim.now == (PARAMS.store_occupancy + PARAMS.request_latency
                       + PARAMS.response_latency)


def test_back_to_back_host_writes_serialize_at_port():
    sim, _amap, _mem, noc = make_noc()
    first = noc.host_write(BASE, 1)
    second = noc.host_write(BASE + 8, 2)
    sim.run(until=second.delivered)
    assert first.delivered.value == PARAMS.store_occupancy + PARAMS.request_latency
    assert second.delivered.value == 2 * PARAMS.store_occupancy + PARAMS.request_latency


def test_host_read_returns_data_after_round_trip():
    sim, _amap, mem, noc = make_noc()
    mem.write_word(BASE + 16, 777)
    done = noc.host_read(BASE + 16)
    sim.run(until=done)
    assert done.value == 777
    assert sim.now == (PARAMS.load_occupancy + PARAMS.request_latency
                       + PARAMS.response_latency)


def test_multicast_single_port_occupancy():
    sim, _amap, mem, noc = make_noc()
    addresses = [BASE, BASE + 8, BASE + 16, BASE + 24]
    handle = noc.host_multicast_write(addresses, 9)
    sim.run(until=handle.delivered)
    # One occupancy, one traversal, plus the replication tree.
    assert sim.now == (PARAMS.store_occupancy + PARAMS.request_latency
                       + PARAMS.multicast_tree_latency)
    for addr in addresses:
        assert mem.read_word(addr) == 9


def test_multicast_disabled_raises():
    params = NocParams(multicast_enabled=False)
    _sim, _amap, _mem, noc = make_noc(params=params)
    with pytest.raises(ConfigError):
        noc.host_multicast_write([BASE, BASE + 8], 1)


def test_multicast_dispatch_beats_unicast_loop():
    """The core claim: unicast grows linearly, multicast stays constant."""
    for fanout in [2, 8, 32]:
        sim, _amap, _mem, noc = make_noc()
        handles = [noc.host_write(BASE + 8 * i, 1) for i in range(fanout)]
        sim.run(until=handles[-1].delivered)
        unicast_cycles = sim.now

        sim2, _amap2, _mem2, noc2 = make_noc()
        handle = noc2.host_multicast_write(
            [BASE + 8 * i for i in range(fanout)], 1)
        sim2.run(until=handle.delivered)
        multicast_cycles = sim2.now

        assert unicast_cycles == (fanout * PARAMS.store_occupancy
                                  + PARAMS.request_latency)
        assert multicast_cycles == (PARAMS.store_occupancy
                                    + PARAMS.request_latency
                                    + PARAMS.multicast_tree_latency)
        if fanout > 1:
            assert multicast_cycles < unicast_cycles


def test_cluster_write_uses_cluster_port():
    sim, _amap, mem, noc = make_noc()
    handle = noc.cluster_write(2, BASE + 8, 5)
    sim.run(until=handle.delivered)
    assert sim.now == PARAMS.cluster_port_occupancy + PARAMS.request_latency
    assert mem.read_word(BASE + 8) == 5


def test_cluster_ports_are_independent():
    sim, _amap, _mem, noc = make_noc()
    a = noc.cluster_write(0, BASE, 1)
    b = noc.cluster_write(1, BASE + 8, 2)
    sim.run()
    # Different ports: both deliver at the same cycle.
    assert a.delivered.value == b.delivered.value


def test_cluster_read():
    sim, _amap, mem, noc = make_noc()
    mem.write_word(BASE + 24, 31)
    done = noc.cluster_read(3, BASE + 24)
    sim.run(until=done)
    assert done.value == 31


def test_cluster_id_out_of_range():
    _sim, _amap, _mem, noc = make_noc(num_clusters=2)
    with pytest.raises(ConfigError):
        noc.cluster_write(2, BASE, 1)
    with pytest.raises(ConfigError):
        noc.cluster_read(-1, BASE)


def test_amo_returns_old_value_and_serializes():
    sim, _amap, mem, noc = make_noc()
    mem.write_word(BASE + 32, 100)
    first = noc.cluster_amo_add(0, BASE + 32, 1)
    second = noc.cluster_amo_add(1, BASE + 32, 1)
    sim.run()
    assert {first.value, second.value} == {100, 101}
    assert mem.read_word(BASE + 32) == 102


def test_amo_completion_gap_equals_service_time():
    sim, _amap, mem, noc = make_noc()
    mem.write_word(BASE + 32, 0)
    completions = []

    def watcher(event, tag):
        event.add_callback(lambda e: completions.append((tag, sim.now)))

    watcher(noc.cluster_amo_add(0, BASE + 32, 1), "c0")
    watcher(noc.cluster_amo_add(1, BASE + 32, 1), "c1")
    sim.run()
    cycles = sorted(cycle for _tag, cycle in completions)
    assert cycles[1] - cycles[0] == PARAMS.amo_service_cycles


def test_transaction_log_counts():
    sim, _amap, _mem, noc = make_noc()
    noc.host_write(BASE, 1)
    noc.host_read(BASE)
    noc.cluster_amo_add(0, BASE, 1)
    noc.host_multicast_write([BASE, BASE + 8], 2)
    sim.run()
    assert noc.count(TransactionKind.WRITE) == 1
    assert noc.count(TransactionKind.READ) == 1
    assert noc.count(TransactionKind.AMO_ADD) == 1
    assert noc.count(TransactionKind.MULTICAST_WRITE) == 1
    assert noc.count(TransactionKind.WRITE, source="host") == 1
    assert noc.count(TransactionKind.WRITE, source="cluster0") == 0


def test_params_validation():
    with pytest.raises(ConfigError):
        NocParams(request_latency=-1).validate()
    with pytest.raises(ConfigError):
        NocParams(store_occupancy=0).validate()
    with pytest.raises(ConfigError):
        Interconnect(Simulator(), AddressMap(), NocParams(), num_clusters=0)


def test_transaction_record_validation():
    with pytest.raises(ValueError):
        Transaction(TransactionKind.WRITE, "host", (), 1, False, 0)
    with pytest.raises(ValueError):
        Transaction(TransactionKind.WRITE, "host", (1, 2), 1, False, 0)
    txn = Transaction(TransactionKind.MULTICAST_WRITE, "host", (8, 16), 1, False, 0)
    assert txn.fanout == 2
    with pytest.raises(ValueError):
        _ = txn.address


def test_multicast_targets_helper():
    targets = multicast_targets(base=0x0400_0000, stride=0x1000, count=3,
                                offset=0x10)
    assert targets == (0x0400_0010, 0x0400_1010, 0x0400_2010)


def test_multicast_targets_validation():
    with pytest.raises(ConfigError):
        multicast_targets(0, 0x1000, 0)
    with pytest.raises(ConfigError):
        multicast_targets(0, 0, 4)
    with pytest.raises(ConfigError):
        multicast_targets(0, 0x1000, 4, offset=0x1000)
