"""Unit tests for address-map watchpoints and per-port routing caches."""

import pytest

from repro.errors import MemoryError_
from repro.mem.map import AddressMap, MmioDevice, Region
from repro.mem.memory import MainMemory


def _map_with_memory(base=0x1000, size=0x1000):
    amap = AddressMap()
    memory = MainMemory(base=base, size_bytes=size)
    amap.add(Region("dram", base, size, memory))
    return amap, memory


def test_watchpoint_fires_on_routed_write():
    amap, _memory = _map_with_memory()
    seen = []
    amap.watch(0x1008, seen.append)
    amap.write_word(0x1000, 7)   # different address: silent
    amap.write_word(0x1008, 42)
    amap.write_word(0x1008, 43)
    assert seen == [42, 43]


def test_watchpoint_fires_on_amo():
    amap, _memory = _map_with_memory()
    seen = []
    amap.watch(0x1010, seen.append)
    assert amap.amo_add(0x1010, 5) == 0   # returns the old value
    assert amap.amo_add(0x1010, 3) == 5
    assert seen == [5, 8]                 # observes the *new* values


def test_watchpoint_duplicate_raises_and_unwatch_clears():
    amap, _memory = _map_with_memory()
    amap.watch(0x1000, lambda value: None)
    with pytest.raises(MemoryError_):
        amap.watch(0x1000, lambda value: None)
    amap.unwatch(0x1000)
    amap.unwatch(0x1000)          # no-op when absent
    amap.watch(0x1000, lambda value: None)   # rearm after unwatch is fine
    amap.clear_watchpoints()
    amap.watch(0x1000, lambda value: None)   # and after a clear


def test_watchpoint_observes_writes_from_every_port():
    amap, _memory = _map_with_memory()
    seen = []
    amap.watch(0x1020, seen.append)
    port_a = amap.port_router()
    port_b = amap.port_router()
    port_a.write_word(0x1020, 1)
    port_b.write_word(0x1020, 2)
    assert seen == [1, 2]


class _Reg(MmioDevice):
    def __init__(self):
        self.values = {}

    def write_register(self, offset, value):
        self.values[offset] = value

    def read_register(self, offset):
        return self.values.get(offset, 0)


def test_port_hit_cache_survives_region_switches():
    amap, memory = _map_with_memory()
    device = _Reg()
    amap.add(Region("mmio", 0x4000, 0x100, device))
    port = amap.port_router()
    # Alternate between regions: the one-slot cache must re-resolve
    # correctly every time, and MMIO writes must go through registers.
    for i in range(4):
        port.write_word(0x1000 + 8 * i, i)
        port.write_word(0x4008, 100 + i)
    assert memory.read_word(0x1018) == 3
    assert device.values[0x8] == 103
    with pytest.raises(MemoryError_):
        port.read_word(0x9000)
    # A miss must not poison the hit slot.
    assert port.read_word(0x1018) == 3


def test_alloc_error_message_accounts_for_alignment_padding():
    memory = MainMemory(base=0x1000, size_bytes=64)
    memory.alloc(56)   # bump to 0x1038; align=32 pads 8 more bytes away
    with pytest.raises(MemoryError_) as excinfo:
        memory.alloc(16, align=32)
    message = str(excinfo.value)
    assert "16 bytes requested" in message
    assert "8 bytes of alignment padding" in message
