"""Unit tests for SoC instance pooling and component reset plumbing."""

import os

import pytest

from repro import flags
from repro.errors import (
    ConfigError,
    OffloadError,
    QuiescenceError,
    SimulationError,
)
from repro.core.offload import offload
from repro.runtime.protocol import OffloadRuntime
from repro.sim import IntegrityWarning
from repro.sim.kernel import Simulator
from repro.sim.resource import SerialResource
from repro.soc.config import SoCConfig, VARIANT_FEATURES
from repro.soc.manticore import ManticoreSystem
from repro.soc.pool import FRESH_SYSTEMS_ENV, SystemPool

CFG = SoCConfig.baseline(num_clusters=2)


@pytest.fixture(autouse=True)
def _pooling_enabled(monkeypatch):
    """Pool-behaviour tests need pooling on: the CI ``ab-gates`` matrix
    runs the suite with ``REPRO_FRESH_SYSTEMS`` set, which would turn
    every acquire into a build and void the reuse assertions."""
    monkeypatch.delenv(FRESH_SYSTEMS_ENV, raising=False)


def _drain(system):
    """Run a minimal measurement so the system is drained and poolable.

    ``release`` only retains systems whose simulator has drained; a
    never-run system still holds its spawn kick-off events.
    """
    offload(system, "daxpy", 16, 1)


# ----------------------------------------------------------------------
# SystemPool
# ----------------------------------------------------------------------
def test_pool_reuses_one_instance_per_config():
    pool = SystemPool()
    with pool.lease(CFG) as first:
        _drain(first)
    with pool.lease(CFG) as second:
        assert second is first
        _drain(second)
    assert (pool.builds, pool.hits) == (1, 1)


def test_pool_keys_on_config_digest():
    pool = SystemPool()
    other = SoCConfig.baseline(num_clusters=4)
    with pool.lease(CFG) as system:
        _drain(system)
    with pool.lease(other) as system:
        _drain(system)
    assert pool.builds == 2
    assert pool.idle_count == 2
    # Structurally equal config objects share the slot.
    with pool.lease(SoCConfig.baseline(num_clusters=2)) as system:
        assert system.config.num_clusters == 2
    assert pool.hits == 1


def test_pool_never_retains_an_undrained_system(monkeypatch):
    monkeypatch.delenv(flags.STRICT_ENV, raising=False)
    pool = SystemPool()
    with pytest.warns(IntegrityWarning, match="non-quiescent"):
        with pool.lease(CFG) as system:
            assert system.sim.pending   # spawn kick-offs still queued
    assert pool.idle_count == 0
    assert pool.dropped == 1


def test_pool_release_raises_in_strict_mode(monkeypatch):
    monkeypatch.setenv(flags.STRICT_ENV, "1")
    pool = SystemPool()
    system = pool.acquire(CFG)
    assert system.sim.pending
    with pytest.raises(QuiescenceError) as info:
        pool.release(system)
    assert pool.dropped == 1
    # The failing audit rides along for post-mortems.
    assert not info.value.report.ok


def test_pool_discards_instance_on_exception():
    pool = SystemPool()
    with pytest.raises(RuntimeError):
        with pool.lease(CFG) as system:
            _drain(system)
            raise RuntimeError("measurement failed")
    assert pool.idle_count == 0
    with pool.lease(CFG) as system:
        _drain(system)
    assert pool.builds == 2   # the poisoned instance was not reused


def test_pool_max_idle_bounds_retention():
    pool = SystemPool(max_idle=1)
    a = pool.acquire(CFG)
    b = pool.acquire(CFG)
    _drain(a)
    _drain(b)
    pool.release(a)
    pool.release(b)
    assert pool.idle_count == 1
    pool.clear()
    assert pool.idle_count == 0
    with pytest.raises(ValueError):
        SystemPool(max_idle=0)


def test_pool_respects_trace_recording_choice():
    pool = SystemPool()
    with pool.lease(CFG, record_trace=True) as system:
        _drain(system)
    assert pool.idle_count == 1
    # The retained instance records traces; a no-trace lease must not
    # get it back.
    with pool.lease(CFG, record_trace=False) as system:
        assert not system.trace.enabled
        system.run()   # drain the spawn kick-offs so release retains it
    assert pool.builds == 2
    assert pool.hits == 0


def test_fresh_systems_env_disables_pooling():
    saved = os.environ.get(FRESH_SYSTEMS_ENV)
    os.environ[FRESH_SYSTEMS_ENV] = "1"
    try:
        pool = SystemPool()
        with pool.lease(CFG) as system:
            _drain(system)
        with pool.lease(CFG) as system:
            _drain(system)
        assert pool.builds == 2
        assert pool.hits == 0
        assert pool.idle_count == 0
    finally:
        if saved is None:
            del os.environ[FRESH_SYSTEMS_ENV]
        else:
            os.environ[FRESH_SYSTEMS_ENV] = saved


# ----------------------------------------------------------------------
# Reset plumbing
# ----------------------------------------------------------------------
def test_simulator_reset_requires_drained_queues():
    sim = Simulator()

    def proc():
        yield 10

    sim.spawn(proc(), name="p")
    with pytest.raises(SimulationError):
        sim.reset()
    sim.run()
    sim.reset()
    assert sim.now == 0


def test_system_reset_restores_measurable_state():
    system = ManticoreSystem(CFG)
    result = offload(system, "daxpy", 32, 2)
    assert system.sim.now > 0
    assert system.noc.transactions
    system.reset()
    assert system.sim.now == 0
    assert system.noc.transactions == []
    assert system.host.retired_operations == 0
    assert system.host.lsu.loads_issued == 0
    assert system.noc.host_port.requests == 0
    assert system.memory.allocated_bytes == 0
    again = offload(system, "daxpy", 32, 2)
    assert again.runtime_cycles == result.runtime_cycles


def test_serial_resource_charge_bulk():
    sim = Simulator()
    port = SerialResource(sim, "port")
    port.charge_bulk(requests=3, busy_cycles=9, next_free=40)
    assert port.requests == 3
    assert port.busy_cycles == 9
    port.charge_bulk(requests=0, busy_cycles=0, next_free=10)  # never rewinds
    assert port.requests == 3
    with pytest.raises(SimulationError):
        port.charge_bulk(requests=-1, busy_cycles=0, next_free=0)
    port.reset()
    assert port.requests == 0
    assert port.busy_cycles == 0


# ----------------------------------------------------------------------
# SoCConfig.for_variant and the mismatch hints
# ----------------------------------------------------------------------
def test_for_variant_sets_feature_flags():
    base = SoCConfig.baseline(num_clusters=2)
    for variant, (multicast, hw_sync) in VARIANT_FEATURES.items():
        derived = base.for_variant(variant)
        assert derived.multicast == multicast, variant
        assert derived.hw_sync == hw_sync, variant
        assert derived.num_clusters == 2
    with pytest.raises(ConfigError):
        base.for_variant("no-such-variant")


def test_mismatched_runtime_hints_at_for_variant():
    system = ManticoreSystem(CFG)
    with pytest.raises(OffloadError, match="for_variant"):
        OffloadRuntime(system, use_multicast=True, use_hw_sync=False)
    with pytest.raises(OffloadError, match="for_variant"):
        OffloadRuntime(system, use_multicast=False, use_hw_sync=True)


def test_config_digest_is_memoized_and_distinct():
    config = SoCConfig.baseline(num_clusters=2)
    assert config.digest() == config.digest()
    assert config.digest() != SoCConfig.extended(num_clusters=2).digest()
