"""The consolidated REPRO_* environment gates in :mod:`repro.flags`."""

import pytest

from repro import flags


@pytest.mark.parametrize("accessor, env", [
    (flags.naive_poll, flags.NAIVE_POLL_ENV),
    (flags.naive_channel, flags.NAIVE_CHANNEL_ENV),
    (flags.naive_barrier, flags.NAIVE_BARRIER_ENV),
    (flags.naive_snapshot, flags.NAIVE_SNAPSHOT_ENV),
    (flags.naive_batch, flags.NAIVE_BATCH_ENV),
    (flags.naive_mpredict, flags.NAIVE_MPREDICT_ENV),
    (flags.linear_routing, flags.LINEAR_ROUTING_ENV),
    (flags.fresh_systems, flags.FRESH_SYSTEMS_ENV),
    (flags.explicit_fabric, flags.EXPLICIT_FABRIC_ENV),
    (flags.legacy_job_seeds, flags.LEGACY_JOB_SEEDS_ENV),
    (flags.strict, flags.STRICT_ENV),
])
def test_boolean_gates_follow_the_non_empty_convention(monkeypatch,
                                                       accessor, env):
    monkeypatch.delenv(env, raising=False)
    assert accessor() is False
    monkeypatch.setenv(env, "")
    assert accessor() is False
    monkeypatch.setenv(env, "1")
    assert accessor() is True
    monkeypatch.setenv(env, "anything")
    assert accessor() is True


def test_cache_dir_returns_none_when_unset(monkeypatch):
    monkeypatch.delenv(flags.CACHE_DIR_ENV, raising=False)
    assert flags.cache_dir() is None
    monkeypatch.setenv(flags.CACHE_DIR_ENV, "/tmp/somewhere")
    assert flags.cache_dir() == "/tmp/somewhere"
    monkeypatch.setenv(flags.CACHE_DIR_ENV, "")
    assert flags.cache_dir() is None


def test_all_gates_is_complete():
    assert set(flags.ALL_GATES) == {
        flags.NAIVE_POLL_ENV, flags.NAIVE_CHANNEL_ENV,
        flags.NAIVE_BARRIER_ENV, flags.NAIVE_SNAPSHOT_ENV,
        flags.NAIVE_BATCH_ENV, flags.NAIVE_MPREDICT_ENV,
        flags.LINEAR_ROUTING_ENV, flags.FRESH_SYSTEMS_ENV,
        flags.EXPLICIT_FABRIC_ENV, flags.LEGACY_JOB_SEEDS_ENV,
        flags.CACHE_DIR_ENV, flags.CACHE_MAX_ENTRIES_ENV, flags.STRICT_ENV}


def test_cache_max_entries_accepts_only_positive_integers(monkeypatch):
    monkeypatch.delenv(flags.CACHE_MAX_ENTRIES_ENV, raising=False)
    assert flags.cache_max_entries() is None
    monkeypatch.setenv(flags.CACHE_MAX_ENTRIES_ENV, "")
    assert flags.cache_max_entries() is None
    monkeypatch.setenv(flags.CACHE_MAX_ENTRIES_ENV, "not-a-number")
    assert flags.cache_max_entries() is None
    monkeypatch.setenv(flags.CACHE_MAX_ENTRIES_ENV, "0")
    assert flags.cache_max_entries() is None
    monkeypatch.setenv(flags.CACHE_MAX_ENTRIES_ENV, "-3")
    assert flags.cache_max_entries() is None
    monkeypatch.setenv(flags.CACHE_MAX_ENTRIES_ENV, "17")
    assert flags.cache_max_entries() == 17


def test_accessors_reread_the_environment(monkeypatch):
    monkeypatch.setenv(flags.NAIVE_POLL_ENV, "1")
    assert flags.naive_poll() is True
    monkeypatch.delenv(flags.NAIVE_POLL_ENV)
    assert flags.naive_poll() is False
