"""Unit tests for analysis utilities: tables, charts, stats, fitting, export."""

import pytest

from repro.analysis.charts import bar_chart, line_chart
from repro.analysis.export import grid_to_csv, sweep_to_csv
from repro.analysis.fitting import compare_models, fit_report
from repro.analysis.stats import (
    amdahl_speedup,
    crossover_m,
    geometric_mean,
    parallel_efficiency,
    summarize,
)
from repro.analysis.tables import Table
from repro.core.model import OffloadModel, PAPER_DAXPY_MODEL
from repro.core.sweep import SweepPoint, SweepResult
from repro.errors import ModelError


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def test_table_renders_aligned_columns():
    table = Table(["M", "cycles"], title="demo")
    table.add_row([1, 1000])
    table.add_row([32, 637])
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "M" in lines[1] and "cycles" in lines[1]
    assert len({len(line) for line in lines[2:3]}) == 1


def test_table_formats_floats_and_bools():
    table = Table(["a", "b"])
    table.add_row([1.23456, True])
    text = table.render()
    assert "1.235" in text
    assert "yes" in text


def test_table_rejects_bad_rows():
    table = Table(["only"])
    with pytest.raises(ValueError):
        table.add_row([1, 2])
    with pytest.raises(ValueError):
        Table([])


# ----------------------------------------------------------------------
# Charts
# ----------------------------------------------------------------------
def test_bar_chart_scales_to_peak():
    text = bar_chart({"a": 1.0, "b": 2.0}, width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart({})
    with pytest.raises(ValueError):
        bar_chart({"a": 1.0}, width=0)
    with pytest.raises(ValueError):
        bar_chart({"a": 0.0})


def test_line_chart_contains_all_series():
    text = line_chart({"base": {1: 10.0, 2: 20.0},
                       "ext": {1: 5.0, 2: 8.0}}, width=20, height=6)
    assert "legend" in text
    assert "base" in text and "ext" in text
    assert "*" in text and "o" in text


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"empty": {}})


def test_line_chart_flat_series():
    # A constant series must not divide by zero.
    text = line_chart({"flat": {1: 5.0, 2: 5.0}}, width=10, height=4)
    assert "y_max = 5" in text


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ModelError):
        geometric_mean([])
    with pytest.raises(ModelError):
        geometric_mean([1.0, 0.0])


def test_summarize():
    stats = summarize([1.0, 2.0, 3.0])
    assert stats["min"] == 1.0
    assert stats["max"] == 3.0
    assert stats["mean"] == pytest.approx(2.0)
    assert stats["median"] == 2.0
    with pytest.raises(ModelError):
        summarize([])


def test_crossover_m():
    assert crossover_m({1: 100, 4: 80, 8: 90}) == 4
    assert crossover_m({1: 50, 2: 50}) == 1  # ties go to the smaller M
    assert crossover_m({}) is None


def test_parallel_efficiency():
    eff = parallel_efficiency({1: 100, 2: 60, 4: 40})
    assert eff[1] == pytest.approx(1.0)
    assert eff[2] == pytest.approx(100 / 120)
    with pytest.raises(ModelError):
        parallel_efficiency({2: 60})


def test_amdahl_speedup():
    assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)
    assert amdahl_speedup(1.0, 8) == pytest.approx(1.0)
    assert amdahl_speedup(0.5, 2) == pytest.approx(1.0 / 0.75)
    with pytest.raises(ModelError):
        amdahl_speedup(1.5, 2)
    with pytest.raises(ModelError):
        amdahl_speedup(0.5, 0)


# ----------------------------------------------------------------------
# Fit reports
# ----------------------------------------------------------------------
def test_fit_report_perfect_model():
    model = PAPER_DAXPY_MODEL
    points = [(m, 1024, model.predict(m, 1024)) for m in (1, 2, 4, 8)]
    report = fit_report(model, points)
    assert report.r_squared == pytest.approx(1.0)
    assert report.mape_percent == pytest.approx(0.0)
    assert report.max_ape_percent == pytest.approx(0.0)
    assert report.num_points == 4
    assert "R^2" in report.summary()


def test_fit_report_with_errors():
    model = PAPER_DAXPY_MODEL
    points = [(m, 1024, model.predict(m, 1024) * 1.10) for m in (1, 2, 4, 8)]
    report = fit_report(model, points)
    assert report.mape_percent == pytest.approx(100 * (1 - 1 / 1.1), rel=1e-3)
    assert report.r_squared < 1.0


def test_fit_report_empty_rejected():
    with pytest.raises(ModelError):
        fit_report(PAPER_DAXPY_MODEL, [])


def test_compare_models():
    ours = OffloadModel(t0=360, mem_coeff=0.25, compute_coeff=0.45)
    comparison = compare_models(ours, PAPER_DAXPY_MODEL)
    assert comparison["t0"] == (360, 367)
    assert comparison["mem_coeff"][0] == comparison["mem_coeff"][1]


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def make_sweep_result():
    point = SweepPoint(kernel_name="daxpy", n=64, num_clusters=2,
                       variant="extended", runtime_cycles=500,
                       phases={"setup": 100, "dispatch": 8,
                               "completion_wait": 392, "sync_overhead": 20,
                               "total": 500})
    return SweepResult(points=(point,))


def test_sweep_to_csv():
    text = sweep_to_csv(make_sweep_result())
    lines = text.strip().splitlines()
    assert lines[0].startswith("kernel,n,num_clusters")
    assert lines[1] == "daxpy,64,2,extended,500,100,8,392,20"


def test_grid_to_csv():
    text = grid_to_csv({(2, 64): 1.5, (1, 64): 1.0}, value_name="speedup")
    lines = text.strip().splitlines()
    assert lines[0] == "num_clusters,n,speedup"
    assert lines[1] == "1,64,1.0"  # sorted by (M, N)
    assert lines[2] == "2,64,1.5"
