"""Unit tests for the fast-forward primitives behind the A/B gates.

Every closed form added by the fast-forward layer has a non-generator
primitive at its core: channel reservations (``request_at`` /
``reserve_transfer`` / ``DmaEngine.reserve_in``), closed-form barrier
crossings (``cross_all_known`` / ``book_arrival``), the mailbox's
``job_event``, and the host's bulk store staging
(``host_write_block``).  These tests pin each primitive's timing
against the event path it replaces and its refusal/validation edges.
"""

import pytest

from repro import flags
from repro.cluster import Barrier, DmaEngine, Mailbox
from repro.core.offload import offload
from repro.errors import SimulationError
from repro.sim import SerialResource, Simulator, ThroughputChannel
from repro.soc.config import SoCConfig
from repro.soc.fabricbarrier import FabricBarrier
from repro.soc.manticore import DRAM_BASE, SYNCUNIT_BASE, ManticoreSystem


@pytest.fixture(autouse=True)
def _fast_paths_on(monkeypatch):
    """These tests exercise the fast-forward primitives directly, so
    ambient ``REPRO_NAIVE_*`` gates (the CI ``ab-gates`` matrix runs
    the suite once per gate) must not divert the gated call sites."""
    for name in (flags.NAIVE_CHANNEL_ENV, flags.NAIVE_BARRIER_ENV):
        monkeypatch.delenv(name, raising=False)


# ----------------------------------------------------------------------
# SerialResource reservations
# ----------------------------------------------------------------------
def _finish_of(body):
    """Spawn ``body(sim, resource)`` on a fresh resource; return
    (finish value, completion cycle, resource)."""
    sim = Simulator()
    resource = SerialResource(sim, name="r", reserve_lead=4)
    out = []

    def runner():
        finish = yield from body(sim, resource)
        out.append((finish, sim.now))

    sim.spawn(runner())
    sim.run()
    return out[0], resource


def test_reservation_matches_deferred_request():
    def naive(sim, resource):
        yield 4
        finish = yield resource.request(10)
        return finish

    def reserved(sim, resource):
        finish = yield resource.request_at(4, 10)
        return finish

    naive_out, naive_res = _finish_of(naive)
    fast_out, fast_res = _finish_of(reserved)
    assert fast_out == naive_out == (14, 14)
    assert fast_res.ff_requests == 1 and naive_res.ff_requests == 0
    assert (fast_res.requests, fast_res.busy_cycles) == \
        (naive_res.requests, naive_res.busy_cycles)


def test_can_reserve_requires_matching_lead():
    sim = Simulator()
    plain = SerialResource(sim, name="plain")
    assert not plain.can_reserve(0)
    leased = SerialResource(sim, name="leased", reserve_lead=4)
    assert leased.can_reserve(4)
    assert not leased.can_reserve(3)


def test_request_at_rejects_invalid_reservations():
    sim = Simulator()
    resource = SerialResource(sim, name="r", reserve_lead=4)
    with pytest.raises(SimulationError):
        resource.request_at(3, 10)  # mismatched lead
    with pytest.raises(SimulationError):
        resource.request_at(4, -1)  # negative service
    with pytest.raises(SimulationError):
        SerialResource(sim, name="bad", reserve_lead=-1)


def test_plain_request_inside_window_poisons_reservations():
    sim = Simulator()
    resource = SerialResource(sim, name="r", reserve_lead=8)
    resource.request_at(8, 5)     # open window: naive issue at cycle 8
    assert resource.ff_conflicts == 0
    resource.request(3)           # unexpected arrival inside the window
    assert resource.ff_conflicts == 1
    assert not resource.can_reserve(8)
    with pytest.raises(SimulationError):
        resource.request_at(8, 5)
    # reset() restores the reservation path.
    sim.run()
    resource.reset()
    assert resource.can_reserve(8)


def test_charge_bulk_accounting_and_validation():
    sim = Simulator()
    resource = SerialResource(sim, name="r")
    resource.charge_bulk(requests=3, busy_cycles=30, next_free=50)
    assert resource.requests == 3
    assert resource.busy_cycles == 30
    assert resource.next_free == 50
    # next_free never rewinds.
    resource.charge_bulk(requests=1, busy_cycles=1, next_free=10)
    assert resource.next_free == 50
    with pytest.raises(SimulationError):
        resource.charge_bulk(requests=-1, busy_cycles=0, next_free=0)
    with pytest.raises(SimulationError):
        resource.charge_bulk(requests=0, busy_cycles=-1, next_free=0)


def test_channel_reserve_transfer_matches_setup_then_transfer():
    def naive(sim):
        channel = ThroughputChannel(sim, 64, name="c", reserve_lead=8)
        def body():
            yield 8
            finish = yield channel.transfer(256)
            return finish
        return channel, body

    def reserved(sim):
        channel = ThroughputChannel(sim, 64, name="c", reserve_lead=8)
        def body():
            finish = yield channel.reserve_transfer(8, 256)
            return finish
        return channel, body

    results = []
    for build in (naive, reserved):
        sim = Simulator()
        channel, body = build(sim)
        finishes = []

        def runner(body=body, finishes=finishes):
            finishes.append((yield from body()))

        sim.spawn(runner())
        sim.run()
        results.append((finishes[0], sim.now, channel.bytes_moved,
                        channel.busy_cycles, channel.requests))
    assert results[0] == results[1] == (12, 12, 256, 4, 1)


# ----------------------------------------------------------------------
# DmaEngine non-generator reservations
# ----------------------------------------------------------------------
def _make_dma(setup=4, width=64, lead=4):
    sim = Simulator()
    read = ThroughputChannel(sim, width, name="read", reserve_lead=lead)
    write = ThroughputChannel(sim, width, name="write", reserve_lead=lead)
    return sim, DmaEngine(sim, read, write, setup_cycles=setup)


def test_dma_reserve_in_commits_and_counts():
    sim, dma = _make_dma()
    done = dma.reserve_in(128)
    assert done is not None
    sim.run()
    assert done.triggered
    assert done.value == 4 + 2  # setup lead + 128B over a 64B/cycle channel
    assert (dma.transfers_in, dma.bytes_in) == (1, 128)
    assert (dma.ff_transfers, dma.ff_fallbacks) == (1, 0)


def test_dma_reserve_out_uses_write_channel():
    sim, dma = _make_dma()
    done = dma.reserve_out(64)
    sim.run()
    assert done.value == 4 + 1
    assert (dma.transfers_out, dma.bytes_out) == (1, 64)
    assert dma.read_channel.bytes_moved == 0


def test_dma_reserve_declines_without_charging():
    # Zero and negative byte counts: nothing to commit.
    _sim, dma = _make_dma()
    assert dma.reserve_in(0) is None
    assert dma.reserve_in(-1) is None
    # A channel without reservations (or a mismatched lead) declines.
    _sim, plain = _make_dma(lead=None)
    assert plain.reserve_in(64) is None
    _sim, mismatched = _make_dma(setup=4, lead=2)
    assert mismatched.reserve_out(64) is None
    for engine in (dma, plain, mismatched):
        assert engine.transfers_in == engine.transfers_out == 0
        assert engine.ff_transfers == 0


def test_dma_transfer_falls_back_and_counts_when_unreservable():
    sim, dma = _make_dma(setup=4, lead=2)  # lead mismatch: no fast path
    done = sim.spawn(dma.transfer_in(128))
    sim.run()
    assert done.finished
    assert sim.now == 4 + 2
    assert (dma.ff_transfers, dma.ff_fallbacks) == (0, 1)
    assert (dma.transfers_in, dma.bytes_in) == (1, 128)


# ----------------------------------------------------------------------
# Barrier closed-form crossing
# ----------------------------------------------------------------------
def test_cross_all_known_matches_spawned_arrivals():
    # Reference: three parties arriving at 0, 5, and 9; latency 2.
    sim = Simulator()
    naive = Barrier(sim, parties=3, latency=2)
    times = []

    def party(delay):
        if delay:
            yield delay
        yield from naive.wait()
        times.append(sim.now)

    for delay in (0, 5, 9):
        sim.spawn(party(delay))
    sim.run()

    # Closed form: the caller arrives now, last arrival 9 cycles out.
    sim2 = Simulator()
    fast = Barrier(sim2, parties=3, latency=2)
    fast_times = []

    def caller():
        yield fast.cross_all_known(9)
        fast_times.append(sim2.now)

    sim2.spawn(caller())
    sim2.run()
    assert fast_times == [times[0]] == [11]
    assert fast.generation == naive.generation == 1
    assert fast.ff_crossings == 1


def test_cross_all_known_validation():
    sim = Simulator()
    barrier = Barrier(sim, parties=2, latency=1)
    with pytest.raises(SimulationError):
        barrier.cross_all_known(-1)

    def one():
        yield from barrier.wait()

    sim.spawn(one())
    sim.run()  # drains with one party parked
    with pytest.raises(SimulationError):
        barrier.cross_all_known(4)


# ----------------------------------------------------------------------
# FabricBarrier booked arrivals
# ----------------------------------------------------------------------
def test_book_arrival_matches_arrive_wire_timing():
    # Two clusters arrive at cycles 0 and 5; arrival wire 8, release 8.
    # Last arrival lands at the counter at 13; release wave at 21.
    sim = Simulator()
    fabric = FabricBarrier(sim, arrival_latency=8, release_latency=8)
    times = []

    def member(delay):
        if delay:
            yield delay
        yield fabric.book_arrival(2, group=0)
        times.append(sim.now)

    sim.spawn(member(0))
    sim.spawn(member(5))
    sim.run()
    assert times == [21, 21]
    assert fabric.generations == 1
    assert fabric.ff_arrivals == 2


def test_book_arrival_validation():
    sim = Simulator()
    fabric = FabricBarrier(sim, arrival_latency=1, release_latency=1)
    with pytest.raises(SimulationError):
        fabric.book_arrival(0)
    with pytest.raises(SimulationError):
        fabric.book_arrival(2, group=-1)
    fabric.book_arrival(2, group=3)
    assert fabric.waiting(group=3) == 1
    with pytest.raises(SimulationError):
        fabric.book_arrival(3, group=3)  # mismatched party count


# ----------------------------------------------------------------------
# Mailbox doorbell event
# ----------------------------------------------------------------------
def test_mailbox_job_event_delivers_pointer():
    sim = Simulator()
    mailbox = Mailbox(sim, cluster_id=3)
    ring = mailbox.job_event()
    assert mailbox.waiters == 1
    mailbox.write_register(0x00, 0x1234)
    sim.run()
    assert ring.triggered and ring.value == 0x1234
    assert mailbox.waiters == 0
    assert ring.name == "mailbox3.ring"  # deadlock-report contract


# ----------------------------------------------------------------------
# Bulk host store staging
# ----------------------------------------------------------------------
def _small_system():
    system = ManticoreSystem(SoCConfig.baseline(num_clusters=2))
    # Drain the boot resumes: the staging fast path requires an idle
    # scheduler (offload calls it from exactly that state).
    system.sim.run()
    return system


def test_host_write_block_commits_stores_and_charges_port():
    system = _small_system()
    noc = system.noc
    base = DRAM_BASE + 0x1000
    done = noc.host_write_block([(base, [1, 2, 3]), (base + 64, [7])])
    assert done is not None
    system.sim.run()
    assert done.triggered
    assert list(system.memory.read_words(base, 3)) == [1, 2, 3]
    assert list(system.memory.read_words(base + 64, 1)) == [7]
    params = noc.params
    finish = 4 * params.store_occupancy
    assert done.value == finish + params.request_latency \
        + params.response_latency
    assert noc.host_port.requests == 4
    assert noc.host_port.busy_cycles == finish
    assert (noc.ff_store_runs, noc.ff_stores) == (1, 4)
    assert len(noc.transactions) == 4


def test_host_write_block_declines_with_pending_work():
    system = _small_system()
    system.sim.schedule(5, lambda _arg: None)
    assert system.noc.host_write_block([(DRAM_BASE, [1])]) is None
    assert system.noc.ff_store_runs == 0
    system.sim.run()


def test_host_write_block_declines_with_watchpoints():
    system = _small_system()
    system.address_map.watch(DRAM_BASE + 8, lambda value: None)
    assert system.noc.host_write_block([(DRAM_BASE, [1])]) is None
    system.address_map.unwatch(DRAM_BASE + 8)
    assert system.noc.host_write_block([(DRAM_BASE, [1])]) is not None


def test_host_write_block_declines_mmio_and_region_overrun():
    system = _small_system()
    assert system.noc.host_write_block([(SYNCUNIT_BASE, [1])]) is None
    tail = DRAM_BASE + system.memory.size_bytes - 8
    assert system.noc.host_write_block([(tail, [1, 2])]) is None
    assert system.noc.host_write_block([(tail, [1])]) is not None


# ----------------------------------------------------------------------
# Aggregated fast-forward statistics
# ----------------------------------------------------------------------
def test_fastforward_stats_engage_and_reset():
    system = _small_system()
    offload(system, "daxpy", 64, 2)
    stats = system.fastforward_stats()
    assert stats["dma_transfers"] > 0
    assert stats["channel_requests"] > 0
    assert stats["compute_phases"] > 0
    assert stats["barrier_crossings"] > 0
    assert stats["fabric_arrivals"] == 2
    assert stats["staged_store_runs"] == 1
    assert stats["staged_stores"] > 0
    assert stats["dma_fallbacks"] == 0
    assert stats["channel_conflicts"] == 0
    system.reset()
    assert all(value == 0 for value in system.fastforward_stats().values())
