"""The shared Experiment base: CSV export and banded assertions."""

import dataclasses
import typing

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import Experiment


@dataclasses.dataclass(frozen=True)
class _Toy(Experiment):
    rows: typing.Tuple[typing.Tuple[int, float], ...]

    def csv_columns(self):
        return ("m", "cycles")

    def csv_rows(self):
        return iter(self.rows)


def test_to_csv_has_header_and_rows():
    toy = _Toy(rows=((1, 100.0), (2, 62.5)))
    lines = toy.to_csv().splitlines()
    assert lines[0] == "m,cycles"
    assert lines[1] == "1,100.0"
    assert lines[2] == "2,62.5"


def test_to_csv_renders_none_as_empty_cell():
    @dataclasses.dataclass(frozen=True)
    class _Sparse(Experiment):
        def csv_columns(self):
            return ("kernel", "crossover_n")

        def csv_rows(self):
            yield ("daxpy", 128)
            yield ("memcpy", None)

    lines = _Sparse().to_csv().splitlines()
    assert lines[2] == "memcpy,"


def test_csv_is_not_implemented_by_default():
    @dataclasses.dataclass(frozen=True)
    class _Bare(Experiment):
        pass

    with pytest.raises(NotImplementedError):
        _Bare().to_csv()
    with pytest.raises(NotImplementedError):
        _Bare().render()


def test_assert_band_accepts_in_band_values():
    toy = _Toy(rows=())
    toy.assert_band(0.5, 0.0, 1.0, "speedup")
    toy.assert_band(0.0, 0.0, 1.0, "at the low edge")
    toy.assert_band(1.0, 0.0, 1.0, "at the high edge")


def test_assert_band_raises_with_the_label_and_band():
    toy = _Toy(rows=())
    with pytest.raises(ExperimentError, match="speedup"):
        toy.assert_band(1.5, 0.0, 1.0, "speedup")
    with pytest.raises(ExperimentError, match=r"_Toy"):
        toy.assert_band(-0.1, 0.0, 1.0, "speedup")
