"""Unit tests for the offload runtimes (variants, protocol, trace)."""

import pytest

from repro import abi
from repro.core.offload import offload_daxpy
from repro.errors import OffloadError, TraceError
from repro.noc.packet import TransactionKind
from repro.runtime import OffloadRuntime, RUNTIME_VARIANTS, make_runtime
from repro.runtime.trace import build_offload_trace
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    return ManticoreSystem(SoCConfig.extended(num_clusters=8, **overrides))


def base_system(**overrides):
    return ManticoreSystem(SoCConfig.baseline(num_clusters=8, **overrides))


# ----------------------------------------------------------------------
# Variant selection
# ----------------------------------------------------------------------
def test_auto_follows_hardware_features():
    assert make_runtime(ext_system(), "auto").name == "extended"
    assert make_runtime(base_system(), "auto").name == "baseline"


def test_explicit_variants_on_extended_hardware():
    system = ext_system()
    for name in RUNTIME_VARIANTS:
        assert make_runtime(system, name).name == name


def test_unsupported_variants_on_baseline_hardware():
    system = base_system()
    for name in ("multicast_only", "hw_sync_only", "extended"):
        with pytest.raises(OffloadError):
            make_runtime(system, name)


def test_unknown_variant_name():
    with pytest.raises(OffloadError, match="extended"):
        make_runtime(ext_system(), "turbo")


def test_sync_mode_follows_hw_sync_flag():
    system = ext_system()
    assert make_runtime(system, "extended").sync_mode == abi.SYNC_MODE_SYNCUNIT
    assert make_runtime(system, "multicast_only").sync_mode == abi.SYNC_MODE_AMO


def test_amo_variant_requires_flag_address():
    system = ext_system()
    runtime = make_runtime(system, "baseline")
    desc = abi.JobDescriptor(
        kernel_name="daxpy", n=8, num_clusters=1,
        sync_mode=abi.SYNC_MODE_AMO, completion_addr=0x8000_0000,
        scalars={"a": 1.0},
        input_addrs={"x": 0x8000_0100, "y": 0x8000_0200},
        output_addrs={"y": 0x8000_0200})
    with pytest.raises(OffloadError):
        runtime.offload_program(desc, 0x8000_0300, None, {})


# ----------------------------------------------------------------------
# Protocol behaviour observed through transactions
# ----------------------------------------------------------------------
def test_baseline_issues_one_doorbell_store_per_cluster():
    system = base_system()
    offload_daxpy(system, n=256, num_clusters=8)
    mailboxes = set(system.mailbox_addrs(8))
    doorbells = [
        txn for txn in system.noc.transactions
        if txn.kind is TransactionKind.WRITE and txn.source == "host"
        and txn.addresses[0] in mailboxes
    ]
    assert len(doorbells) == 8


def test_extended_issues_single_multicast():
    system = ext_system()
    offload_daxpy(system, n=256, num_clusters=8)
    assert system.noc.count(TransactionKind.MULTICAST_WRITE) == 1
    multicast = [t for t in system.noc.transactions
                 if t.kind is TransactionKind.MULTICAST_WRITE][0]
    assert multicast.fanout == 8


def test_extended_single_cluster_avoids_multicast():
    system = ext_system()
    offload_daxpy(system, n=256, num_clusters=1)
    assert system.noc.count(TransactionKind.MULTICAST_WRITE) == 0


def test_baseline_completion_uses_amos():
    system = base_system()
    offload_daxpy(system, n=256, num_clusters=4)
    assert system.noc.count(TransactionKind.AMO_ADD) == 4
    assert system.syncunit.count == 0


def test_extended_completion_uses_syncunit():
    system = ext_system()
    offload_daxpy(system, n=256, num_clusters=4)
    assert system.noc.count(TransactionKind.AMO_ADD) == 0
    assert system.syncunit.count == 4
    assert system.syncunit.interrupts_fired == 1


def test_baseline_polls_the_flag():
    system = base_system()
    offload_daxpy(system, n=1024, num_clusters=2)
    host_reads = system.noc.count(TransactionKind.READ, source="host")
    assert host_reads >= 2  # at least a couple of poll iterations


def test_extended_host_never_polls():
    system = ext_system()
    offload_daxpy(system, n=1024, num_clusters=2)
    assert system.noc.count(TransactionKind.READ, source="host") == 0


# ----------------------------------------------------------------------
# Phase trace
# ----------------------------------------------------------------------
def test_trace_phases_are_consistent():
    system = ext_system()
    result = offload_daxpy(system, n=512, num_clusters=4)
    trace = result.trace
    assert trace.start_cycle <= trace.descriptor_written
    assert trace.descriptor_written <= trace.dispatch_start
    assert trace.dispatch_start <= trace.dispatch_done
    assert trace.dispatch_done <= trace.end_cycle
    assert trace.total == result.runtime_cycles
    assert len(trace.clusters) == 4
    assert all(c.had_work for c in trace.clusters)
    summary = trace.phase_summary()
    assert summary["total"] == (summary["setup"] + summary["dispatch"]
                                + summary["completion_wait"])


def test_trace_cluster_phase_ordering():
    system = ext_system()
    result = offload_daxpy(system, n=512, num_clusters=4)
    for cluster in result.trace.clusters:
        assert cluster.doorbell <= cluster.awake <= cluster.decoded
        assert cluster.decoded <= cluster.dma_in_done
        assert cluster.dma_in_done <= cluster.compute_done
        assert cluster.compute_done <= cluster.dma_out_done
        assert cluster.dma_out_done <= cluster.completion_signalled


def test_trace_windows_separate_sequential_offloads():
    system = ext_system()
    first = offload_daxpy(system, n=256, num_clusters=2)
    second = offload_daxpy(system, n=256, num_clusters=4)
    assert second.start_cycle >= first.end_cycle
    assert len(first.trace.clusters) == 2
    assert len(second.trace.clusters) == 4


def test_trace_missing_marker_raises():
    system = ext_system()
    with pytest.raises(TraceError, match=r"\[0, 100\)"):
        build_offload_trace(system.trace, 0, 100)


def test_trace_window_is_half_open():
    # A marker recorded exactly at end_cycle belongs to whatever the
    # host does next (e.g. a back-to-back offload starting on the cycle
    # the previous one ended), never to the window being sliced.
    system = ext_system()
    recorder = system.trace
    recorder.record("host", "offload_start")          # cycle 0
    recorder.record("host", "descriptor_written")
    recorder.record("host", "dispatch_start")
    recorder.record("host", "dispatch_done")
    system.sim.schedule(50, lambda _arg: recorder.record(
        "host", "descriptor_written", {"next": True}))
    system.run()
    trace = build_offload_trace(recorder, 0, 50)
    assert trace.descriptor_written == 0   # cycle-50 marker excluded
    with pytest.raises(TraceError, match="dispatch_start"):
        # The next window sees only its own descriptor_written marker.
        build_offload_trace(recorder, 50, 60)


def test_trace_error_names_missing_cluster_marker():
    system = ext_system()
    recorder = system.trace
    for label in ("descriptor_written", "dispatch_start", "dispatch_done"):
        recorder.record("host", label)
    recorder.record("cluster0", "doorbell")   # woke, but never finished
    recorder.record("cluster0", "awake")
    with pytest.raises(TraceError) as info:
        build_offload_trace(recorder, 0, 100)
    message = str(info.value)
    assert "cluster0" in message and "'decoded'" in message
    assert "doorbell" in message   # the markers that ARE present


def test_trace_dedups_repeated_markers_first_wins():
    system = ext_system()
    recorder = system.trace
    for label in ("descriptor_written", "dispatch_start", "dispatch_done"):
        recorder.record("host", label)
    for label in ("doorbell", "awake", "decoded", "completion_signalled"):
        recorder.record("cluster1", label)
    system.sim.schedule(10, lambda _arg: recorder.record(
        "cluster1", "doorbell", {"duplicate": True}))
    system.run()
    trace = build_offload_trace(recorder, 0, 100)
    assert trace.clusters[0].doorbell == 0   # first record wins


def test_empty_slices_show_as_no_work():
    system = ext_system()
    result = offload_daxpy(system, n=4, num_clusters=8)
    workers = [c for c in result.trace.clusters if c.had_work]
    idlers = [c for c in result.trace.clusters if not c.had_work]
    assert len(workers) == 4
    assert len(idlers) == 4
    for cluster in idlers:
        assert cluster.dma_in_done is None
        assert cluster.completion_signalled >= cluster.decoded


def test_baseline_dispatch_grows_linearly():
    cycles = {}
    for m in (1, 2, 4, 8):
        system = base_system()
        result = offload_daxpy(system, n=256, num_clusters=m)
        cycles[m] = result.trace.dispatch_cycles
    slope_1 = cycles[2] - cycles[1]
    assert cycles[8] - cycles[4] == 4 * slope_1
    assert cycles[4] - cycles[2] == 2 * slope_1


def test_extended_dispatch_is_constant():
    cycles = set()
    for m in (2, 4, 8):
        system = ext_system()
        result = offload_daxpy(system, n=256, num_clusters=m)
        cycles.add(result.trace.dispatch_cycles)
    assert len(cycles) == 1
