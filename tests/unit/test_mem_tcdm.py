"""Unit tests for the cluster scratchpad model."""

import pytest

from repro.errors import MemoryError_
from repro.mem import Tcdm, WORD_BYTES


BASE = 0x1000_0000


def test_defaults_are_manticore_like():
    tcdm = Tcdm()
    assert tcdm.size_bytes == 128 * 1024
    assert tcdm.num_banks == 32


def test_fits():
    tcdm = Tcdm(size_bytes=1024, base=BASE)
    assert tcdm.fits(1024)
    assert tcdm.fits(1)
    assert not tcdm.fits(1025)
    assert not tcdm.fits(0)


def test_free_bytes_decreases_with_allocation():
    tcdm = Tcdm(size_bytes=1024, base=BASE)
    assert tcdm.free_bytes() == 1024
    tcdm.alloc(256)
    assert tcdm.free_bytes() == 768


def test_bank_of_word_interleaving():
    tcdm = Tcdm(size_bytes=4096, base=BASE, num_banks=4)
    assert tcdm.bank_of(BASE) == 0
    assert tcdm.bank_of(BASE + WORD_BYTES) == 1
    assert tcdm.bank_of(BASE + 4 * WORD_BYTES) == 0


def test_bank_of_rejects_foreign_and_unaligned_addresses():
    tcdm = Tcdm(size_bytes=64, base=BASE)
    with pytest.raises(MemoryError_):
        tcdm.bank_of(BASE + 64)
    with pytest.raises(MemoryError_):
        tcdm.bank_of(BASE + 1)


def test_bank_count_must_be_positive():
    with pytest.raises(MemoryError_):
        Tcdm(num_banks=0)


def test_clear_zeroes_and_resets():
    tcdm = Tcdm(size_bytes=64, base=BASE)
    addr = tcdm.alloc(8)
    tcdm.write_word(addr, 42)
    tcdm.clear()
    assert tcdm.read_word(addr) == 0
    assert tcdm.alloc(8) == addr
