"""Soak test: random mixed operation sequences on one long-lived system.

Real applications interleave offloads of different kernels, widths,
variants and protocols with host executions and concurrent launches —
all on the *same* SoC instance.  This test drives randomized sequences
and checks that every operation verifies functionally and the system's
bookkeeping stays consistent throughout (no leaked barrier generations,
no stuck sync-unit state, no cross-job interference).
"""

import numpy
import pytest

from repro.core.concurrent import ConcurrentJob, offload_concurrent
from repro.core.offload import offload, run_on_host
from repro.kernels.registry import get_kernel
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem

#: Kernels cheap enough to soak with (gemv's A matrix would exhaust the
#: bump allocator over hundreds of operations).
SOAK_KERNELS = ("daxpy", "saxpy", "axpby", "memcpy", "scale", "relu",
                "stencil3", "vecsum", "dot")


def random_operation(rng, system):
    """Run one random operation; returns an identifying tag."""
    choice = rng.integers(0, 10)
    kernel = str(rng.choice(SOAK_KERNELS))
    n = int(rng.integers(1, 700))
    seed = int(rng.integers(0, 2**31 - 1))
    if choice < 5:
        m = int(rng.integers(1, system.config.num_clusters + 1))
        variant = str(rng.choice(["auto", "baseline", "multicast_only",
                                  "hw_sync_only", "extended"]))
        result = offload(system, kernel, n, m, variant=variant, seed=seed)
        assert result.verified is True
        return f"offload {kernel} n={n} m={m} {variant}"
    if choice < 7:
        tileable = get_kernel(kernel).tileable
        if tileable and n >= 64:
            m = int(rng.integers(1, system.config.num_clusters + 1))
            result = offload(system, kernel, n, m, seed=seed,
                             exec_mode="double_buffered")
            assert result.verified is True
            return f"dbuf {kernel} n={n} m={m}"
        result = run_on_host(system, kernel, n, seed=seed)
        assert result.verified is True
        return f"host {kernel} n={n}"
    if choice < 9:
        result = run_on_host(system, kernel, n, seed=seed)
        assert result.verified is True
        return f"host {kernel} n={n}"
    half = system.config.num_clusters // 2
    m_a = int(rng.integers(1, half + 1))
    m_b = int(rng.integers(1, system.config.num_clusters - m_a + 1))
    result = offload_concurrent(system, [
        ConcurrentJob(kernel, n, m_a, seed=seed),
        ConcurrentJob("memcpy", max(1, n // 2), m_b, seed=seed + 1),
    ])
    assert all(job.verified for job in result.jobs)
    return f"concurrent {kernel}+memcpy"


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_mixed_operations_on_one_system(seed):
    rng = numpy.random.default_rng(seed)
    system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
    for _step in range(40):
        random_operation(rng, system)
        # Invariants that must hold between operations:
        assert system.fabric_barrier.open_groups == ()
        assert not system.syncunit.armed
        assert all(cluster.barrier.waiting == 0
                   for cluster in system.clusters)
        assert system.sim.pending == 0 or system.sim.step() is not None


def test_soak_is_deterministic():
    def run(seed):
        rng = numpy.random.default_rng(seed)
        system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
        tags = [random_operation(rng, system) for _ in range(15)]
        return tags, system.sim.now

    first = run(42)
    second = run(42)
    assert first == second
