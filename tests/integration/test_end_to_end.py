"""End-to-end matrix: every kernel × every variant × assorted shapes."""

import numpy
import pytest

from repro.core.offload import offload
from repro.kernels.registry import get_kernel, kernel_names
from repro.runtime.api import RUNTIME_VARIANTS
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


@pytest.mark.parametrize("variant", sorted(RUNTIME_VARIANTS))
@pytest.mark.parametrize("kernel", kernel_names())
def test_kernel_variant_matrix(kernel, variant):
    system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
    result = offload(system, kernel, 96, 4, variant=variant)
    assert result.verified is True
    assert result.variant == variant
    assert result.runtime_cycles > 0


@pytest.mark.parametrize("n,m", [(1, 1), (1, 8), (7, 8), (8, 8),
                                 (1023, 8), (1024, 1)])
def test_odd_shapes(n, m):
    system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
    assert offload(system, "daxpy", n, m).verified is True


def test_many_sequential_offloads_on_one_system():
    system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
    cycles = []
    for index in range(6):
        result = offload(system, "daxpy", 256, 4, seed=index)
        cycles.append(result.runtime_cycles)
    # Steady state: every offload after the first costs the same.
    assert len(set(cycles[1:])) == 1
    assert system.syncunit.interrupts_fired == 6


def test_mixed_kernel_pipeline_shares_buffers():
    """A realistic dependent pipeline: scale -> daxpy -> vecsum."""
    system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
    rng = numpy.random.default_rng(11)
    n = 200
    x = rng.normal(size=n)
    scaled = offload(system, "scale", n, 4, scalars={"a": 2.0},
                     inputs={"x": x}).outputs["y"]
    accumulated = offload(system, "daxpy", n, 4, scalars={"a": -1.0},
                          inputs={"x": x, "y": scaled}).outputs["y"]
    partials = offload(system, "vecsum", n, 8,
                       inputs={"x": accumulated}).outputs["partials"]
    # 2x - x = x, so the sum of partials is the sum of x.
    assert partials.sum() == pytest.approx(x.sum())


def test_timing_independent_of_data_values():
    """Cycle counts depend on shape, never on operand values."""
    fast = offload(ManticoreSystem(SoCConfig.extended(num_clusters=8)),
                   "daxpy", 512, 4, inputs={"x": numpy.zeros(512),
                                            "y": numpy.zeros(512)})
    slow = offload(ManticoreSystem(SoCConfig.extended(num_clusters=8)),
                   "daxpy", 512, 4, inputs={"x": numpy.full(512, 1e300),
                                            "y": numpy.full(512, -1e300)})
    assert fast.runtime_cycles == slow.runtime_cycles


def test_variant_choice_never_changes_results():
    outputs = {}
    for variant in sorted(RUNTIME_VARIANTS):
        system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
        outputs[variant] = offload(system, "gemv", 16, 4, seed=3,
                                   variant=variant).outputs["y"]
    reference = outputs.pop("extended")
    for variant, got in outputs.items():
        numpy.testing.assert_array_equal(got, reference, err_msg=variant)


def test_full_fabric_offload():
    system = ManticoreSystem(SoCConfig.extended(num_clusters=32))
    result = offload(system, "daxpy", 4096, 32)
    assert result.verified is True
    assert len(result.trace.clusters) == 32


def test_kernel_timing_rates_order_runtimes():
    """Heavier per-element kernels must take longer at equal traffic."""
    def runtime(kernel):
        system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
        return offload(system, kernel, 2048, 1, verify=False).runtime_cycles

    assert runtime("axpby") > runtime("daxpy")  # 3.0 vs 2.6 cycles/elem


def test_saxpy_cheaper_than_daxpy():
    """Half the traffic and double the rate: SAXPY must win clearly."""
    def runtime(kernel):
        system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
        return offload(system, kernel, 4096, 8, verify=False).runtime_cycles

    assert runtime("saxpy") < 0.75 * runtime("daxpy")
