"""Golden A/B cycle-identity: the staging refactor must not move a cycle.

The job-lifecycle refactor (``repro.core.staging`` + the strategy and
phase-pipeline layers) promises *byte-identical* cycle counts against
the pre-refactor code.  ``tests/data/golden_cycles.json`` holds the
measurements recorded from the pre-refactor tree; these tests replay
the exact same launches and require equality — not bands, not
tolerances.  If one of these fails, the refactor changed the measured
machine (most likely the operand-allocation order in
:meth:`repro.core.staging.JobBinding.bind`), which invalidates every
number in the paper reproduction.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.concurrent import ConcurrentJob, offload_concurrent
from repro.core.offload import offload
from repro.core.overlap import offload_overlapped
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "data" / "golden_cycles.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())

GRID_N = (1024, 2048, 4096, 8192)
GRID_M = (1, 2, 4, 8, 16, 32)

_CONFIGS = {
    "baseline": SoCConfig.baseline,
    "extended": SoCConfig.extended,
}


def test_golden_covers_the_full_grid():
    for variant in ("baseline", "extended"):
        assert set(GOLDEN["grid"][variant]) == {
            f"{n}x{m}" for n in GRID_N for m in GRID_M}


@pytest.mark.parametrize("variant", ["baseline", "extended"])
@pytest.mark.parametrize("n", GRID_N)
def test_daxpy_grid_is_cycle_identical(variant, n):
    config = _CONFIGS[variant]()
    golden = GOLDEN["grid"][variant]
    measured = {
        m: offload(ManticoreSystem(config), "daxpy", n, m).runtime_cycles
        for m in GRID_M
    }
    assert measured == {m: golden[f"{n}x{m}"] for m in GRID_M}


@pytest.mark.parametrize("variant, key", [
    ("extended", "overlapped"),
    ("baseline", "overlapped_baseline"),
])
def test_overlapped_launch_is_cycle_identical(variant, key):
    config = _CONFIGS[variant]()
    result = offload_overlapped(ManticoreSystem(config), "daxpy", 2048, 8,
                                "scale", 512)
    assert result.total_cycles == GOLDEN[key]["total_cycles"]
    assert result.exposed_wait_cycles == GOLDEN[key]["exposed_wait_cycles"]


@pytest.mark.parametrize("variant, key", [
    ("extended", "concurrent"),
    ("baseline", "concurrent_baseline"),
])
def test_concurrent_launch_is_cycle_identical(variant, key):
    config = _CONFIGS[variant]()
    result = offload_concurrent(ManticoreSystem(config), [
        ConcurrentJob("daxpy", 2048, 8, seed=1),
        ConcurrentJob("memcpy", 1024, 4, seed=2),
    ])
    assert result.makespan_cycles == GOLDEN[key]["makespan_cycles"]
    assert [job.completed_cycle for job in result.jobs] == \
        GOLDEN[key]["completed_cycles"]


# ----------------------------------------------------------------------
# Heterogeneity refactor A/B: fabrics of the default class must not
# move a cycle either — same golden numbers, three construction paths.
# ----------------------------------------------------------------------

def _default_class_fabric(variant):
    from repro.soc.tiles import SNITCH, TileGroup

    legacy = _CONFIGS[variant]()
    return SoCConfig.with_fabric(
        [TileGroup(name="all", tile=SNITCH, count=legacy.num_clusters)],
        multicast=legacy.multicast, hw_sync=legacy.hw_sync)


@pytest.mark.parametrize("variant", ["baseline", "extended"])
@pytest.mark.parametrize("n", GRID_N)
def test_default_class_fabric_is_cycle_identical(variant, n):
    """One explicit SNITCH group ≡ the legacy homogeneous config."""
    config = _default_class_fabric(variant)
    golden = GOLDEN["grid"][variant]
    measured = {
        m: offload(ManticoreSystem(config), "daxpy", n, m).runtime_cycles
        for m in GRID_M
    }
    assert measured == {m: golden[f"{n}x{m}"] for m in GRID_M}


@pytest.mark.parametrize("variant, key", [
    ("extended", "overlapped"),
    ("baseline", "overlapped_baseline"),
])
def test_default_class_fabric_overlapped_is_cycle_identical(variant, key):
    config = _default_class_fabric(variant)
    result = offload_overlapped(ManticoreSystem(config), "daxpy", 2048, 8,
                                "scale", 512)
    assert result.total_cycles == GOLDEN[key]["total_cycles"]
    assert result.exposed_wait_cycles == GOLDEN[key]["exposed_wait_cycles"]


@pytest.mark.parametrize("variant, key", [
    ("extended", "concurrent"),
    ("baseline", "concurrent_baseline"),
])
def test_default_class_fabric_concurrent_is_cycle_identical(variant, key):
    config = _default_class_fabric(variant)
    result = offload_concurrent(ManticoreSystem(config), [
        ConcurrentJob("daxpy", 2048, 8, seed=1),
        ConcurrentJob("memcpy", 1024, 4, seed=2),
    ])
    assert result.makespan_cycles == GOLDEN[key]["makespan_cycles"]
    assert [job.completed_cycle for job in result.jobs] == \
        GOLDEN[key]["completed_cycles"]


@pytest.mark.parametrize("variant", ["baseline", "extended"])
def test_explicit_fabric_gate_is_cycle_identical(variant, monkeypatch):
    """Per-cluster single-tile groups ≡ the implicit homogeneous span."""
    monkeypatch.setenv("REPRO_EXPLICIT_FABRIC", "1")
    config = _CONFIGS[variant]()
    assert len(config.groups()) == config.num_clusters
    golden = GOLDEN["grid"][variant]
    measured = {
        m: offload(ManticoreSystem(config), "daxpy", 2048, m).runtime_cycles
        for m in GRID_M
    }
    assert measured == {m: golden[f"2048x{m}"] for m in GRID_M}


def test_snitch_group_of_mixed_fabric_matches_golden():
    """The snitch span of a heterogeneous fabric stays on the golden
    numbers: adding OTHER classes to the SoC must not perturb the
    classes that were already there."""
    from repro.soc.tiles import SNITCH, VECWIDE, TileGroup

    config = SoCConfig.with_fabric(
        [TileGroup(name="little", tile=SNITCH, count=8),
         TileGroup(name="big", tile=VECWIDE, count=24)],
        multicast=True, hw_sync=True)
    golden = GOLDEN["grid"]["extended"]
    for m in (1, 2, 4, 8):
        result = offload(ManticoreSystem(config), "daxpy", 1024, m,
                         tile_group="little")
        assert result.runtime_cycles == golden[f"1024x{m}"]
