"""Failure injection: protocol faults must fail loudly.

Each test breaks the offload protocol the way a real software bug
would — wrong threshold, lost doorbell, corrupt descriptor, premature
doorbell — and asserts the system surfaces a diagnosable error instead
of hanging forever or silently producing wrong data.
"""

import pytest

from repro import abi
from repro.core.offload import offload_daxpy
from repro.errors import DeadlockError, OffloadError, SimulationError
from repro.runtime.api import make_runtime
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.soc.syncunit import IRQ_LINE


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def make_descriptor(system, n=64, num_clusters=2, sync_mode=None,
                    completion_addr=None, exec_mode=abi.EXEC_MODE_PHASED):
    """A valid daxpy descriptor with operand buffers staged."""
    memory = system.memory
    x_addr = memory.alloc_f64(n)
    y_addr = memory.alloc_f64(n)
    if sync_mode is None:
        sync_mode = abi.SYNC_MODE_SYNCUNIT
    if completion_addr is None:
        completion_addr = system.syncunit_increment_addr
    return abi.JobDescriptor(
        kernel_name="daxpy", n=n, num_clusters=num_clusters,
        sync_mode=sync_mode, completion_addr=completion_addr,
        exec_mode=exec_mode, scalars={"a": 1.0},
        input_addrs={"x": x_addr, "y": y_addr},
        output_addrs={"y": y_addr})


def write_descriptor(system, desc):
    words = abi.encode_descriptor(desc)
    desc_addr = system.memory.alloc(8 * max(len(words), 8), align=64)
    for index, word in enumerate(words):
        system.memory.write_word(desc_addr + 8 * index, word)
    return desc_addr


def test_wrong_threshold_hangs_detectably():
    """Threshold > participating clusters: the IRQ never fires and the
    run drains without completing — a loud DeadlockError, not a hang."""
    system = ext_system()
    desc = make_descriptor(system, num_clusters=2)
    desc_addr = write_descriptor(system, desc)
    system.address_map.write_word(system.syncunit_threshold_addr, 3)

    def host_program():
        yield from system.host.multicast_store(
            system.mailbox_addrs(2), desc_addr)
        yield from system.host.wfi(IRQ_LINE)

    done = system.host.run_program(host_program())
    with pytest.raises(DeadlockError):
        system.sim.run(until=done)
    assert system.syncunit.count == 2  # the clusters did finish


def test_lost_doorbell_leaves_cluster_asleep():
    """Dispatching to fewer clusters than the descriptor claims: the
    missing cluster never contributes and the start barrier starves."""
    system = ext_system()
    desc = make_descriptor(system, num_clusters=2)
    desc_addr = write_descriptor(system, desc)
    system.address_map.write_word(system.syncunit_threshold_addr, 2)

    def host_program():
        # Ring only cluster 0 of the two the descriptor expects.
        yield from system.host.store_posted(system.mailbox_addr(0),
                                            desc_addr)
        yield from system.host.wfi(IRQ_LINE)

    done = system.host.run_program(host_program())
    with pytest.raises(DeadlockError):
        system.sim.run(until=done)
    assert system.fabric_barrier.waiting(group=0) == 1


def test_doorbell_to_wrong_cluster_raises():
    """Ringing a cluster outside the job's range is a device error."""
    system = ext_system()
    desc = make_descriptor(system, num_clusters=2)  # clusters 0..1
    desc_addr = write_descriptor(system, desc)

    def host_program():
        yield from system.host.store_posted(system.mailbox_addr(5),
                                            desc_addr)

    system.host.run_program(host_program())
    with pytest.raises(OffloadError, match="outside the job's range"):
        system.sim.run()


def test_corrupt_kernel_id_raises():
    system = ext_system()
    desc = make_descriptor(system)
    desc_addr = write_descriptor(system, desc)
    system.memory.write_word(desc_addr, 999)  # invalid kernel id

    def host_program():
        yield from system.host.multicast_store(
            system.mailbox_addrs(2), desc_addr)

    system.host.run_program(host_program())
    with pytest.raises(OffloadError, match="invalid kernel id"):
        system.sim.run()


def test_descriptor_with_unmapped_buffer_raises():
    from repro.errors import MemoryError_
    system = ext_system()
    desc = make_descriptor(system, num_clusters=1)
    desc_addr = write_descriptor(system, desc)
    # Corrupt the x-buffer pointer (header word 8 is the first scalar,
    # word 9 is x) to an unmapped address.
    system.memory.write_word(desc_addr + 8 * 9, 0x4000_0000)
    system.address_map.write_word(system.syncunit_threshold_addr, 1)

    def host_program():
        yield from system.host.store_posted(system.mailbox_addr(0),
                                            desc_addr)

    system.host.run_program(host_program())
    with pytest.raises(MemoryError_, match="outside main memory"):
        system.sim.run()


def test_premature_doorbell_before_descriptor_write():
    """Ringing before the descriptor lands reads garbage — caught by
    the decode path, not silently executed."""
    system = ext_system()

    def host_program():
        # Doorbell first: the target memory is still all zeros, which
        # decodes as kernel id 0 with n == 0 -> a malformed job.
        empty = system.memory.alloc(8 * 16, align=64)
        yield from system.host.store_posted(system.mailbox_addr(0), empty)

    system.host.run_program(host_program())
    with pytest.raises(OffloadError):
        system.sim.run()


def test_runtime_guard_rejects_infinite_polling():
    """A poll loop that can never succeed trips the cycle guard."""
    system = ManticoreSystem(SoCConfig.baseline(num_clusters=8))
    # Sabotage: clusters signal a *different* flag than the host polls.
    # Simplest injection point: make the offload wait for more cycles
    # than the guard allows by shrinking max_cycles below the runtime.
    with pytest.raises(OffloadError, match="exceeded"):
        offload_daxpy(system, n=1024, num_clusters=2, max_cycles=50)


def test_mismatched_concurrent_barriers_detected():
    """Two jobs erroneously sharing a barrier group must be caught."""
    system = ext_system()
    first = make_descriptor(system, num_clusters=2)
    second = make_descriptor(system, num_clusters=3)
    # Both claim first_cluster=0 (same barrier group, different sizes).
    addr_a = write_descriptor(system, first)
    addr_b = write_descriptor(system, second)
    system.address_map.write_word(system.syncunit_threshold_addr, 5)

    def host_program():
        yield from system.host.store_posted(system.mailbox_addr(0), addr_a)
        yield from system.host.store_posted(system.mailbox_addr(1), addr_b)

    system.host.run_program(host_program())
    with pytest.raises((SimulationError, OffloadError)):
        system.sim.run()
