"""The paper's claims, asserted end to end (experiments E1-E6).

Each test regenerates a paper artifact through :mod:`repro.experiments`
and asserts the claim's *shape* (who wins, by roughly what factor, where
the crossover falls) — absolute cycles are pinned separately in
``test_calibration.py``.
"""

import pytest

from repro import experiments
from repro.core.mape import PAPER_M_VALUES


@pytest.fixture(scope="module")
def fig1l():
    return experiments.fig1_left()


@pytest.fixture(scope="module")
def fig1r():
    return experiments.fig1_right()


@pytest.fixture(scope="module")
def mape_result():
    return experiments.mape_experiment()


# ----------------------------------------------------------------------
# E1: Fig. 1 (left)
# ----------------------------------------------------------------------
def test_extended_runtime_monotone_decreasing_up_to_32(fig1l):
    """'We can leverage additional clusters up to 32 while still
    decreasing execution time.'"""
    curve = [fig1l.extended[m] for m in sorted(fig1l.extended)]
    assert curve == sorted(curve, reverse=True)


def test_baseline_has_interior_minimum(fig1l):
    """'The runtime in the baseline implementation presents a global
    minimum ... when the number of clusters grows above four, the
    offload overhead starts to dominate.'"""
    best = fig1l.baseline_optimum_m
    assert best not in (1, max(fig1l.baseline))  # interior
    assert best in (4, 8)  # paper: 4; ours: 8 in a near-tie with 4
    # Past the optimum the overhead dominates and runtime climbs.
    assert fig1l.baseline[32] > fig1l.baseline[best]


def test_diminishing_returns_toward_32_clusters(fig1l):
    """'Offloading to more clusters would lead to negligible further
    improvements because of Amdahl's law.'"""
    gain_16_to_32 = fig1l.extended[16] - fig1l.extended[32]
    gain_1_to_2 = fig1l.extended[1] - fig1l.extended[2]
    assert gain_16_to_32 < gain_1_to_2 / 5


# ----------------------------------------------------------------------
# E3: the headline numbers
# ----------------------------------------------------------------------
def test_gap_at_32_clusters_exceeds_300_cycles(fig1l):
    """'More than 300 cycles difference in the 32-clusters config.'"""
    assert fig1l.gap_at_max_m > 300


def test_max_speedup_in_headline_band(fig1l):
    """Paper: 47.9 % on the 1024-element DAXPY.  Accept 35-60 %."""
    assert 1.35 <= fig1l.max_speedup <= 1.60


# ----------------------------------------------------------------------
# E2: Fig. 1 (right)
# ----------------------------------------------------------------------
def test_speedup_always_greater_than_one(fig1r):
    """'The speedup is always greater than one.'"""
    assert fig1r.min_speedup > 1.0


def test_speedup_decreases_with_problem_size(fig1r):
    """'For a fixed number of clusters employed, it decreases with the
    problem size.'  Asserted where the signal exceeds the baseline's
    polling jitter (a few cycles): M >= 8."""
    for m in (8, 16, 32):
        by_n = [fig1r.speedups[(m, n)] for n in fig1r.n_values()]
        assert by_n == sorted(by_n, reverse=True), f"M={m}: {by_n}"


def test_speedup_increases_with_clusters_at_fixed_n(fig1r):
    for n in fig1r.n_values():
        by_m = [fig1r.speedups[(m, n)] for m in fig1r.m_values()]
        assert by_m == sorted(by_m), f"N={n}: {by_m}"


# ----------------------------------------------------------------------
# E4 + E5: the model and its MAPE
# ----------------------------------------------------------------------
def test_mape_below_one_percent_for_every_n(mape_result):
    """'The error is consistently lower than 1%.'"""
    assert set(mape_result.per_n) == {256, 512, 768, 1024}
    for n, value in mape_result.per_n.items():
        assert value < 1.0, f"MAPE({n}) = {value:.3f} %"


def test_fitted_constant_matches_paper(mape_result):
    assert mape_result.model.t0 == pytest.approx(367, abs=5)
    assert mape_result.model.mem_coeff == pytest.approx(0.25, abs=0.005)


# ----------------------------------------------------------------------
# E6: the offload decision
# ----------------------------------------------------------------------
def test_decision_rows_verified_in_simulation():
    result = experiments.decision_experiment(
        scenarios=((1024, 700.0), (1024, 800.0), (512, 600.0),
                   (1024, 620.0)))
    feasible = [row for row in result.rows if row.m_min is not None]
    infeasible = [row for row in result.rows if row.m_min is None]
    assert feasible, "at least one scenario must be solvable"
    # 620 cycles is below the ~623-cycle serial floor at N=1024.
    assert any(row.t_max == 620.0 for row in infeasible)
    for row in feasible:
        assert row.meets_deadline, row
        if row.tighter_fails is not None:
            assert row.tighter_fails, row


# ----------------------------------------------------------------------
# A1: the ablation decomposes the gain
# ----------------------------------------------------------------------
def test_feature_ablation_ordering():
    """Each extension helps on its own; both together win at scale."""
    ablation = experiments.ablation_features(m_values=(8, 32))
    at32 = {variant: curve[32]
            for variant, curve in ablation.runtimes.items()}
    assert at32["extended"] <= at32["multicast_only"] <= at32["baseline"]
    assert at32["extended"] <= at32["hw_sync_only"] <= at32["baseline"]
    # Multicast is the bigger lever at 32 clusters (dispatch is linear,
    # sync overhead is mostly constant).
    assert at32["multicast_only"] < at32["hw_sync_only"]
