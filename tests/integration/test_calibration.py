"""Calibration pins: the emergent constants DESIGN.md §5 commits to.

These tests fail if a change to any microarchitectural default drifts
the system away from the paper's published constants.  They measure the
*whole* system — nothing here asserts on configuration values directly.
"""

import pytest

from repro.core.model import OffloadModel
from repro.core.offload import offload_daxpy
from repro.core.sweep import sweep
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


N_VALUES = (256, 512, 768, 1024)
M_VALUES = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def extended_sweep():
    return sweep(SoCConfig.extended(), "daxpy", N_VALUES, M_VALUES)


@pytest.fixture(scope="module")
def fitted_model(extended_sweep):
    return OffloadModel.fit(extended_sweep.triples())


def test_constant_overhead_near_papers_367(fitted_model):
    # Paper Eq. 1: t0 = 367 cycles.  Pin ours to within a few cycles.
    assert fitted_model.t0 == pytest.approx(367, abs=5)


def test_memory_coefficient_matches_papers_quarter(fitted_model):
    # Paper Eq. 1: N/4 — 16·N bytes of operands over 64 B/cycle.
    assert fitted_model.mem_coeff == pytest.approx(0.25, abs=0.005)


def test_compute_coefficient_is_3p6_eighths(fitted_model):
    # Ours: (2.6 compute + 1.0 write-back)/8 per element; the paper's
    # Eq. 1 shows 2.6/8 with write-back folded away (DESIGN.md §2).
    assert fitted_model.compute_coeff == pytest.approx(0.45, abs=0.01)


def test_no_dispatch_term_in_extended_design(fitted_model):
    assert fitted_model.dispatch_coeff == 0.0


def test_daxpy_rate_is_2p6_cycles_per_element():
    from repro.kernels import get_kernel
    assert get_kernel("daxpy").timing.cycles_per_element == pytest.approx(2.6)


def test_shared_channel_width_produces_n_over_4():
    """16·N bytes of DAXPY operands move in N/4 channel cycles."""
    system = ManticoreSystem(SoCConfig.extended())
    offload_daxpy(system, n=1024, num_clusters=8)
    assert system.read_channel.bytes_moved == 16 * 1024
    assert system.read_channel.busy_cycles == 256
    assert system.write_channel.bytes_moved == 8 * 1024
    assert system.write_channel.busy_cycles == 128


def test_extended_runtime_at_32_clusters_near_paper():
    # Paper Eq. 1 at (32, 1024): 633.4 cycles.  Ours lands at 637.
    result = offload_daxpy(ManticoreSystem(SoCConfig.extended()),
                           n=1024, num_clusters=32)
    assert abs(result.runtime_cycles - 633) <= 15


def test_baseline_dispatch_slope_near_10_cycles_per_cluster():
    dispatch = {}
    for m in (8, 32):
        system = ManticoreSystem(SoCConfig.baseline())
        result = offload_daxpy(system, n=256, num_clusters=m)
        dispatch[m] = result.trace.dispatch_cycles
    slope = (dispatch[32] - dispatch[8]) / 24
    assert slope == pytest.approx(10.0, abs=1.0)


def test_total_fabric_is_288_cores():
    assert SoCConfig.extended().total_cores == 288
