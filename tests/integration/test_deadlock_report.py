"""A wedged offload must die with a report naming who waits on what.

These tests break the offload protocol the way
``tests/integration/test_failure_injection.py`` does — but instead of
asserting only *that* the run fails, they assert the failure carries a
:class:`repro.sim.SimulationReport` precise enough to debug from: the
blocked host, the starved DM cores, and their classified wait reasons
(mailbox, barrier, IRQ), plus the trace tail leading up to the wedge.
"""

import pytest

from repro import abi
from repro.errors import DeadlockError, OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.soc.syncunit import IRQ_LINE


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def make_descriptor(system, n=64, num_clusters=2):
    memory = system.memory
    x_addr = memory.alloc_f64(n)
    y_addr = memory.alloc_f64(n)
    return abi.JobDescriptor(
        kernel_name="daxpy", n=n, num_clusters=num_clusters,
        sync_mode=abi.SYNC_MODE_SYNCUNIT,
        completion_addr=system.syncunit_increment_addr,
        exec_mode=abi.EXEC_MODE_PHASED, scalars={"a": 1.0},
        input_addrs={"x": x_addr, "y": y_addr},
        output_addrs={"y": y_addr})


def write_descriptor(system, desc):
    words = abi.encode_descriptor(desc)
    desc_addr = system.memory.alloc(8 * max(len(words), 8), align=64)
    for index, word in enumerate(words):
        system.memory.write_word(desc_addr + 8 * index, word)
    return desc_addr


def wedge_cluster(system):
    """Ring 1 of the 2 clusters the descriptor expects, then WFI.

    Cluster 0 wakes and starves at the job's start barrier, cluster 1
    never hears its doorbell, and the host sleeps on an IRQ that can
    never fire — a three-way deadlock.
    """
    desc = make_descriptor(system, num_clusters=2)
    desc_addr = write_descriptor(system, desc)
    system.address_map.write_word(system.syncunit_threshold_addr, 2)

    def host_program():
        yield from system.host.store_posted(system.mailbox_addr(0),
                                            desc_addr)
        yield from system.host.wfi(IRQ_LINE)

    return system.host.run_program(host_program())


def test_deadlock_report_names_every_blocked_process():
    system = ext_system()
    done = wedge_cluster(system)
    with pytest.raises(DeadlockError) as info:
        system.sim.run(until=done)
    report = info.value.report
    assert report.reason == "deadlock"
    assert report.pending == 0

    blocked = {entry.name: entry for entry in report.blocked}
    # Cluster 0 woke up and starves at the fabric start barrier.
    dm0 = next(e for n, e in blocked.items()
               if n.startswith("cluster0") and e.wait_kind == "barrier")
    assert "fabric_barrier" in dm0.wait_detail
    # Cluster 1 never heard a doorbell: parked on its mailbox.
    dm1 = next(e for n, e in blocked.items() if n.startswith("cluster1"))
    assert dm1.wait_kind == "mailbox"
    assert dm1.wait_detail == "mailbox1.ring"
    # The other six clusters are also mailbox-parked (boot state).
    mailbox_parked = [e for e in report.blocked if e.wait_kind == "mailbox"]
    assert len(mailbox_parked) == 7
    # The host sleeps on the sync-unit IRQ line.
    host = next(e for e in report.blocked if e.wait_kind == "irq")
    assert host.wait_detail == IRQ_LINE


def test_deadlock_report_renders_in_the_error_message():
    system = ext_system()
    done = wedge_cluster(system)
    with pytest.raises(DeadlockError) as info:
        system.sim.run(until=done)
    message = str(info.value)
    assert "blocked process(es)" in message
    assert "mailbox1.ring" in message
    assert f"irq ({IRQ_LINE})" in message


def test_deadlock_report_carries_the_trace_tail():
    system = ext_system()
    done = wedge_cluster(system)
    with pytest.raises(DeadlockError) as info:
        system.sim.run(until=done)
    tail = info.value.report.trace_tail
    assert tail, "system recorder should feed the report"
    labels = {record.label for record in tail}
    assert "doorbell" in labels or "awake" in labels


def test_offload_error_chains_the_report():
    # The high-level entry point (run_to_completion) re-raises as
    # OffloadError but must keep the report attached and quoted.
    from repro.core.staging import run_to_completion
    system = ext_system()
    done = wedge_cluster(system)
    with pytest.raises(OffloadError) as info:
        run_to_completion(system, done, max_cycles=1_000_000)
    assert info.value.report is not None
    assert info.value.report.blocked
    assert "mailbox1.ring" in str(info.value)


def test_cycle_limit_report_on_a_livelocked_host():
    # A host that never stops polling trips the cycle budget; the
    # report names the spinning process's current wait.
    from repro.core.staging import run_to_completion
    system = ext_system()

    def poll_forever():
        while True:
            yield from system.host.load(system.syncunit_count_addr)

    done = system.host.run_program(poll_forever())
    with pytest.raises(OffloadError, match="exceeded 5000 cycles") as info:
        run_to_completion(system, done, max_cycles=5000)
    report = info.value.report
    assert report.reason == "cycle-limit"
    assert report.pending > 0   # the next poll is still queued
