"""Integration checks for the extension experiments (E7-E9, A5, A6).

Small-grid versions of the extension experiments, so regressions in the
machinery they compose (host execution, energy metering, double
buffering, tiling, scheduling) surface in the test suite and not only
in the benchmark harness.
"""

import pytest

from repro import experiments
from repro.core.offload import offload_daxpy, run_on_host
from repro.core.tiling import offload_tiled
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def test_crossover_small_grid():
    result = experiments.crossover_experiment(
        kernels=("daxpy",), n_values=(32, 128, 512), offload_m=8,
        num_clusters=8)
    row = result.rows[0]
    assert row.kernel == "daxpy"
    assert row.crossover_n in (128, 512)
    host, accel = result.curves["daxpy"][32]
    assert host < accel  # tiny jobs stay on the host


def test_energy_small_grid():
    result = experiments.energy_experiment(n=512, m_values=(2, 8),
                                           num_clusters=8)
    for m in (2, 8):
        assert result.extended_pj[m] < result.baseline_pj[m]


def test_scheduler_small_stream():
    result = experiments.scheduler_experiment(num_jobs=8, seed=3,
                                              num_clusters=8)
    adaptive = result.makespans["model_driven"]
    assert adaptive <= min(m for p, m in result.makespans.items()
                           if p != "model_driven") * 1.02


def test_traffic_small_scenario():
    result = experiments.traffic_experiment(num_jobs=24, tenants=2,
                                            num_clusters=8, seed=11)
    assert len(result.metrics) == 12   # 3 arrivals x 4 policies
    for arrival in ("poisson", "bursty", "trace"):
        # The headline claim, on every arrival process: online Eq. 3
        # beats full-width offloading on deadline-miss rate.
        assert result.miss_rate(arrival, "deadline_aware") \
            <= result.miss_rate(arrival, "always_offload_8")
    assert result.miss_rate("poisson", "deadline_aware") < 0.5


def test_traffic_experiment_is_deterministic():
    first = experiments.traffic_experiment(num_jobs=24, tenants=2,
                                           num_clusters=8, seed=11)
    second = experiments.traffic_experiment(num_jobs=24, tenants=2,
                                            num_clusters=8, seed=11)
    assert first.to_csv() == second.to_csv()
    assert first.metrics == second.metrics


def test_double_buffer_ablation_small():
    result = experiments.ablation_double_buffer(n=4096, m_values=(1, 8),
                                                num_clusters=8)
    assert result.double_buffered[1] < result.phased[1]
    assert result.dbuf_mape_vs_phased_model > 3.0


def test_strategies_agree_functionally_on_large_jobs():
    """Tiled, double-buffered and host execution all produce the same
    math for a job no single strategy is required for."""
    import numpy
    n = 4096
    rng = numpy.random.default_rng(12)
    x, y = rng.normal(size=n), rng.normal(size=n)
    config = SoCConfig.extended(num_clusters=8)

    tiled = offload_tiled(ManticoreSystem(config), "daxpy", n, 4,
                          tile_elements=1024, scalars={"a": 2.0},
                          inputs={"x": x, "y": y})
    dbuf = offload_daxpy(ManticoreSystem(config), n=n, num_clusters=4,
                         a=2.0, inputs={"x": x, "y": y},
                         exec_mode="double_buffered")
    host = run_on_host(ManticoreSystem(config), "daxpy", n,
                       scalars={"a": 2.0}, inputs={"x": x, "y": y})
    numpy.testing.assert_array_equal(tiled.outputs["y"], dbuf.outputs["y"])
    numpy.testing.assert_array_equal(tiled.outputs["y"], host.outputs["y"])
