"""Heterogeneous-fabric integration: timing, planner, model, identity.

The tentpole claim of the tile-class refactor, end to end on a real
mixed fabric:

- the two classes genuinely time differently (and cross as N grows),
- the batch planner keeps engaging *per tile group* instead of
  falling back to point-by-point simulation,
- the Eq.-1 model family re-fitted per class stays under the paper's
  error envelope (MAPE < 5 %, Eq. 2), and
- the planned fast path is bit-identical to the naive path
  (``REPRO_NAIVE_BATCH``) on heterogeneous sweeps, grouped or not.
"""

from __future__ import annotations

import pytest

from repro.core.executor import collect_run_stats, drain_run_stats
from repro.core.model import fit_class_models
from repro.core.sweep import sweep
from repro.soc.config import SoCConfig
from repro.soc.tiles import SNITCH, VECWIDE, TileGroup


N_VALUES = (256, 1024, 4096)
M_VALUES = (1, 2, 4)


@pytest.fixture()
def mixed_config():
    return SoCConfig.with_fabric(
        [TileGroup(name="little", tile=SNITCH, count=4),
         TileGroup(name="big", tile=VECWIDE, count=4)],
        multicast=True, hw_sync=True)


def _group_sweeps(config, **kwargs):
    little = sweep(config, "daxpy", N_VALUES, M_VALUES,
                   scalars={"a": 2.0}, tile_group="little", **kwargs)
    big = sweep(config, "daxpy", N_VALUES, M_VALUES,
                scalars={"a": 2.0}, tile_group="big", **kwargs)
    return little, big


def test_classes_time_differently_and_cross(mixed_config):
    little, big = _group_sweeps(mixed_config)
    cycles = {
        (p.n, p.num_clusters): p.runtime_cycles for p in little.points}
    wide = {(p.n, p.num_clusters): p.runtime_cycles for p in big.points}
    assert cycles != wide
    # small N: vecwide's heavyweight dispatch front-end loses
    assert wide[(256, 2)] > cycles[(256, 2)]
    # large N: its 4x streaming rate wins despite half the cores
    assert wide[(4096, 2)] < cycles[(4096, 2)]


def test_planner_engages_per_tile_class(mixed_config):
    collect_run_stats()
    try:
        _group_sweeps(mixed_config)
        runs = drain_run_stats()
    finally:
        collect_run_stats(False)
    by_class = {run["tile_class"]: run for run in runs}
    assert set(by_class) == {"snitch", "vecwide"}
    for tile_class, run in by_class.items():
        assert run["planned_points"] > 0, tile_class
        assert run["batch_fallback_points"] == 0, tile_class
        assert run["prefixes_calibrated"] > 0, tile_class


def test_per_class_mape_under_paper_envelope(mixed_config):
    little, big = _group_sweeps(mixed_config)
    fits = fit_class_models({"snitch": little.triples(),
                             "vecwide": big.triples()})
    assert fits["snitch"].model.t0 < fits["vecwide"].model.t0
    assert (fits["vecwide"].model.compute_coeff
            < fits["snitch"].model.compute_coeff)
    for tile_class, fit in fits.items():
        assert fit.mape_percent < 5.0, (tile_class, fit.mape_percent)


@pytest.mark.parametrize("tile_group", ["little", "big", None])
def test_hetero_planned_path_matches_naive(mixed_config, tile_group,
                                           monkeypatch):
    """Grouped and ungrouped hetero sweeps: planner ≡ reference."""
    m_values = M_VALUES if tile_group else (2, 4, 6, 8)
    planned = sweep(mixed_config, "daxpy", N_VALUES, m_values,
                    scalars={"a": 2.0}, tile_group=tile_group)
    monkeypatch.setenv("REPRO_NAIVE_BATCH", "1")
    naive = sweep(mixed_config, "daxpy", N_VALUES, m_values,
                  scalars={"a": 2.0}, tile_group=tile_group)
    assert [(p.n, p.num_clusters, p.runtime_cycles)
            for p in planned.points] == \
        [(p.n, p.num_clusters, p.runtime_cycles) for p in naive.points]


def test_ungrouped_mixed_sweep_falls_back_only_on_mixed_spans(
        mixed_config):
    """m ≤ 4 stays inside the snitch span (plans); m > 4 crosses into
    the vecwide span (mixed: falls back, still correct)."""
    collect_run_stats()
    try:
        sweep(mixed_config, "daxpy", (256, 1024), (2, 4, 6, 8),
              scalars={"a": 2.0})
        (run,) = drain_run_stats()
    finally:
        collect_run_stats(False)
    assert run["tile_class"] == "mixed"
    assert run["planned_points"] > 0        # uniform spans still plan
    assert run["batch_fallback_points"] > 0  # mixed spans fall back
    total = (run["planned_points"] + run["simulated_points"])
    assert total == run["points"]
