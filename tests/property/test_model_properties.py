"""Property-based tests for the runtime model and decision solver."""

import numpy
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.decision import min_clusters_for_deadline
from repro.core.mape import mape
from repro.core.model import OffloadModel
from repro.errors import DecisionError


model_strategy = st.builds(
    OffloadModel,
    t0=st.floats(min_value=0, max_value=10_000),
    mem_coeff=st.floats(min_value=0, max_value=10),
    compute_coeff=st.floats(min_value=0, max_value=10),
    dispatch_coeff=st.just(0.0),
)

dispatch_model_strategy = st.builds(
    OffloadModel,
    t0=st.floats(min_value=0, max_value=10_000),
    mem_coeff=st.floats(min_value=0, max_value=10),
    compute_coeff=st.floats(min_value=0.001, max_value=10),
    dispatch_coeff=st.floats(min_value=0.001, max_value=100),
)


@given(model_strategy, st.integers(min_value=1, max_value=512),
       st.integers(min_value=1, max_value=100_000))
def test_runtime_decreases_with_m_without_dispatch_term(model, m, n):
    assert model.predict(m + 1, n) <= model.predict(m, n)


@given(dispatch_model_strategy, st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=100_000))
def test_best_m_is_at_least_as_good_as_neighbours(model, max_m, n):
    best = model.best_m(n, max_m)
    best_runtime = model.predict(best, n)
    for m in range(1, max_m + 1):
        assert best_runtime <= model.predict(m, n) + 1e-6


@given(model_strategy,
       st.integers(min_value=1, max_value=100_000),
       st.floats(min_value=1.0, max_value=1e7),
       st.integers(min_value=1, max_value=1024))
def test_m_min_is_feasible_and_minimal(model, n, t_max, max_clusters):
    try:
        m_min = min_clusters_for_deadline(model, n, t_max,
                                          max_clusters=max_clusters)
    except DecisionError:
        # Infeasible: even the fabric-wide offload must miss the deadline.
        assert model.predict(max_clusters, n) > t_max
        return
    assert 1 <= m_min <= max_clusters
    assert model.predict(m_min, n) <= t_max + 1e-6
    if m_min > 1:
        assert model.predict(m_min - 1, n) > t_max


@given(dispatch_model_strategy,
       st.integers(min_value=1, max_value=100_000),
       st.floats(min_value=1.0, max_value=1e7),
       st.integers(min_value=1, max_value=64))
def test_m_min_with_dispatch_term_is_feasible_and_minimal(
        model, n, t_max, max_clusters):
    # With a dispatch term the runtime is not monotone in M, so
    # minimality means *no* narrower width is feasible — not just the
    # immediate neighbour.
    try:
        m_min = min_clusters_for_deadline(model, n, t_max,
                                          max_clusters=max_clusters)
    except DecisionError:
        assert all(model.predict(m, n) > t_max
                   for m in range(1, max_clusters + 1))
        return
    assert 1 <= m_min <= max_clusters
    assert model.predict(m_min, n) <= t_max
    assert all(model.predict(m, n) > t_max for m in range(1, m_min))


@settings(deadline=None)
@given(st.floats(min_value=0, max_value=5_000),
       st.floats(min_value=0, max_value=5),
       st.floats(min_value=0, max_value=5))
def test_fit_recovers_models_exactly_on_noiseless_grids(t0, b, c):
    truth = OffloadModel(t0=t0, mem_coeff=b, compute_coeff=c)
    points = [(m, n, truth.predict(m, n))
              for m in (1, 2, 4, 8, 16, 32) for n in (128, 512, 1024)]
    fitted = OffloadModel.fit(points)
    predictions_match = [
        fitted.predict(m, n) for m, n, _t in points
    ]
    actual = [t for _m, _n, t in points]
    assert numpy.allclose(predictions_match, actual, rtol=1e-6, atol=1e-3)


@given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                max_size=50))
def test_mape_of_exact_prediction_is_zero(values):
    assert mape(values, values) == 0.0


@given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                max_size=50),
       st.floats(min_value=0.5, max_value=2.0))
def test_mape_of_uniform_scaling(values, scale):
    predicted = [v * scale for v in values]
    expected = abs(1 - scale) * 100
    assert mape(values, predicted) == abs(mape(values, predicted))
    assert abs(mape(values, predicted) - expected) < 1e-6
