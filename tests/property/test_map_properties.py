"""Property tests: bisect address routing matches a linear-scan oracle."""

import hypothesis
import hypothesis.strategies as st
import pytest

from repro.errors import MemoryError_
from repro.mem.map import AddressMap, Region


class _Words:
    """A trivial word store standing in for a memory target."""

    def __init__(self):
        self.data = {}

    def read_word(self, addr):
        return self.data.get(addr, 0)

    def write_word(self, addr, value):
        self.data[addr] = value


class LinearMap:
    """Reference implementation: unordered list + linear scan."""

    def __init__(self):
        self.regions = []

    def add(self, region):
        for existing in self.regions:
            if existing.overlaps(region):
                raise MemoryError_("overlap")
            if existing.name == region.name:
                raise MemoryError_("duplicate name")
        self.regions.append(region)

    def region_at(self, addr):
        for region in self.regions:
            if region.contains(addr):
                return region
        raise MemoryError_("unmapped")


def _region_specs():
    # (base, size) pairs over a small address space so that overlaps,
    # adjacency, and misses are all likely.
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=4096),
                  st.integers(min_value=8, max_value=512)),
        min_size=1, max_size=12)


@hypothesis.settings(max_examples=200, deadline=None)
@hypothesis.given(specs=_region_specs(),
                  probes=st.lists(st.integers(min_value=-64, max_value=5120),
                                  min_size=1, max_size=32))
def test_bisect_routing_matches_linear_scan(specs, probes):
    fast = AddressMap()
    slow = LinearMap()
    for index, (base, size) in enumerate(specs):
        region_f = Region(f"r{index}", base, size, _Words())
        region_s = Region(f"r{index}", base, size, _Words())
        fast_error = slow_error = None
        try:
            fast.add(region_f)
        except MemoryError_ as exc:
            fast_error = exc
        try:
            slow.add(region_s)
        except MemoryError_ as exc:
            slow_error = exc
        # Overlap rejection must agree with the oracle exactly.
        assert (fast_error is None) == (slow_error is None), \
            f"add({base:#x}, {size}) disagreement: {fast_error} vs {slow_error}"

    assert len(fast) == len(slow.regions)
    router = fast.port_router()
    for addr in probes:
        try:
            expected = slow.region_at(addr)
        except MemoryError_:
            with pytest.raises(MemoryError_):
                fast.region_at(addr)
            with pytest.raises(MemoryError_):
                router.region_at(addr)
            continue
        # Map-level lookup, then again through a port router (exercising
        # both the map hit slot and the per-port hit slot).
        for lookup in (fast.region_at, router.region_at, router.region_at):
            got = lookup(addr)
            assert got.name == expected.name
            assert got.base == expected.base
            assert got.end == expected.base + expected.size


@hypothesis.settings(max_examples=100, deadline=None)
@hypothesis.given(specs=_region_specs())
def test_regions_stay_sorted_and_named(specs):
    amap = AddressMap()
    added = {}
    for index, (base, size) in enumerate(specs):
        try:
            amap.add(Region(f"r{index}", base, size, _Words()))
            added[f"r{index}"] = (base, size)
        except MemoryError_:
            pass
    bases = [region.base for region in amap.regions]
    assert bases == sorted(bases)
    for name, (base, size) in added.items():
        region = amap.region_named(name)
        assert (region.base, region.size) == (base, size)
    with pytest.raises(KeyError):
        amap.region_named("never-added")
