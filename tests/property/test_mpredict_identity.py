"""Property tests: M-axis prefix prediction is bit-identical, A/B'd.

Layer 3 of the batch engine (:mod:`repro.core.batch`) replaces
one-calibration-per-(variant, M) with an affine M-model fitted from two
anchor calibrations and verified residual-exactly against a held-out
third, plus a persistent calibration store that lets warm runs skip
calibration entirely.  ``REPRO_NAIVE_MPREDICT`` selects the PR-7
reference path; these tests assert the two sides return equal
:class:`~repro.core.sweep.SweepPoint` streams across kernels, variants,
M shapes and job coordinates, that prediction actually engaged
(agreement through silent fallback would be vacuous), that a sabotaged
fit is caught by the holdout check and falls back without corrupting
results, and that a cold store and a warm store produce identical
points — including on N values the store has never seen.
"""

import contextlib
import os

import hypothesis
import hypothesis.strategies as st
import pytest

from repro.core import batch
from repro.core.cache import SweepCache
from repro.core.executor import SweepExecutor
from repro.flags import (
    FRESH_SYSTEMS_ENV,
    NAIVE_BATCH_ENV,
    NAIVE_MPREDICT_ENV,
)
from repro.soc.config import SoCConfig

SETTINGS = hypothesis.settings(
    max_examples=5, deadline=None,
    suppress_health_check=[
        hypothesis.HealthCheck.too_slow,
        # The autouse gate-clearing fixture is env-only and idempotent
        # across examples, so function scope is safe.
        hypothesis.HealthCheck.function_scoped_fixture,
    ])

CFG = SoCConfig.extended(num_clusters=8)
N_VALUES = [1, 24, 96, 256]
#: Six M values so the fit engages for every variant: multicast
#: dispatch is affine only from M = 2, leaving five eligible groups.
M_VALUES = [1, 2, 3, 4, 5, 6]
VARIANTS = ["baseline", "multicast_only", "hw_sync_only", "extended"]


@pytest.fixture(autouse=True)
def _prediction_on(monkeypatch):
    """Pin the predicted path on regardless of ambient gates (the CI
    ``ab-gates`` matrix runs this suite under each ``REPRO_*`` gate)."""
    monkeypatch.delenv(NAIVE_BATCH_ENV, raising=False)
    monkeypatch.delenv(NAIVE_MPREDICT_ENV, raising=False)
    monkeypatch.delenv(FRESH_SYSTEMS_ENV, raising=False)


@contextlib.contextmanager
def _env(name, value):
    saved = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if saved is None:
            del os.environ[name]
        else:
            os.environ[name] = saved


def _ab_sweep(config, kernel_name, n_values, m_values, variant,
              cache=None, **kwargs):
    """One grid through the PR-7 reference and the predicted path.

    Returns ``(naive_points, fast_points, fast_executor)``.
    """
    with _env(NAIVE_MPREDICT_ENV, "1"):
        naive = SweepExecutor().run(config, kernel_name, n_values,
                                    m_values, variant=variant, **kwargs)
    executor = SweepExecutor(cache=cache)
    fast = executor.run(config, kernel_name, n_values, m_values,
                        variant=variant, **kwargs)
    return naive.points, fast.points, executor


# ----------------------------------------------------------------------
# The identity: predicted prefixes == calibrated prefixes, bit for bit
# ----------------------------------------------------------------------
@SETTINGS
@hypothesis.given(kernel=st.sampled_from(["daxpy", "memcpy", "vecsum",
                                          "stencil3"]),
                  variant=st.sampled_from(VARIANTS))
def test_predicted_matches_calibrated_across_kernels_and_variants(
        kernel, variant):
    naive, fast, executor = _ab_sweep(CFG, kernel, N_VALUES, M_VALUES,
                                      variant)
    assert fast == naive
    # Agreement must come from a real fitted model: three anchor
    # calibrations (plus one for multicast's off-domain M = 1 group),
    # every remaining group predicted without simulation.
    assert executor.mmodels_fitted == 1
    assert executor.holdout_fallbacks == 0
    assert executor.prefixes_predicted >= 2
    assert executor.simulated_points < len(M_VALUES)
    assert executor.planned_points + executor.simulated_points \
        == len(N_VALUES) * len(M_VALUES)


@SETTINGS
@hypothesis.given(seed=st.integers(min_value=0, max_value=3),
                  scalar=st.sampled_from([1.0, -0.5, 3.25]))
def test_predicted_matches_calibrated_over_job_coordinates(seed, scalar):
    naive, fast, executor = _ab_sweep(
        CFG, "daxpy", N_VALUES, M_VALUES, "extended",
        seed=seed, scalars={"a": scalar})
    assert fast == naive
    assert executor.mmodels_fitted == 1
    assert executor.prefixes_predicted >= 2


def test_predicted_matches_calibrated_on_wide_fabric_with_empty_slices():
    """A 32-cluster fabric with N down to 1: most clusters get empty
    slices, and the anchors sit at the extreme fabric widths."""
    config = SoCConfig.extended()
    naive, fast, executor = _ab_sweep(
        config, "daxpy", [1, 5, 512], [2, 7, 15, 30, 31, 32], "extended")
    assert fast == naive
    assert executor.mmodels_fitted == 1
    assert executor.prefixes_predicted >= 2


# ----------------------------------------------------------------------
# The holdout check: a bad fit must be caught, never believed
# ----------------------------------------------------------------------
def test_sabotaged_fit_is_caught_by_the_holdout_and_falls_back(
        monkeypatch):
    """Corrupt every fitted slope by one cycle: the held-out anchor no
    longer lies on the line, so the planner must discard the model,
    calibrate per group (the PR-7 rule), and still match the
    reference stream bit for bit."""
    genuine = batch.fit_prefix_model

    def sabotaged(min_m, m_lo, prefix_lo, m_hi, prefix_hi):
        model = genuine(min_m, m_lo, prefix_lo, m_hi, prefix_hi)
        if model is None:
            return None
        return batch.MPrefixModel(
            min_m=model.min_m, m_lo=model.m_lo, m_hi=model.m_hi,
            base=model.base,
            slope=tuple(s + 1 for s in model.slope))

    monkeypatch.setattr(batch, "fit_prefix_model", sabotaged)
    naive, fast, executor = _ab_sweep(CFG, "daxpy", N_VALUES, M_VALUES,
                                      "extended")
    assert fast == naive
    assert executor.mmodels_fitted == 0
    assert executor.holdout_fallbacks == 1
    assert executor.prefixes_predicted == 0
    # Every M group paid its own calibration, PR-7 style.
    assert executor.simulated_points == len(M_VALUES)


def test_non_affine_strategy_never_fits_a_model():
    """Variants whose strategies do not declare the affine domain must
    stay on per-group calibration — here via a grid whose only
    multicast-affine M values are too few to fit."""
    naive, fast, executor = _ab_sweep(CFG, "daxpy", N_VALUES, [1, 2, 3],
                                      "multicast_only")
    assert fast == naive
    assert executor.mmodels_fitted == 0
    # M = 1 is outside multicast's affine domain and [2, 3] is too
    # small an anchor set, so every group calibrated.
    assert executor.simulated_points == 3


# ----------------------------------------------------------------------
# The calibration store: cold and warm runs agree, warm runs skip sims
# ----------------------------------------------------------------------
def test_warm_store_reproduces_cold_results_without_simulating(tmp_path):
    cold_cache = SweepCache(str(tmp_path))
    naive_cold, cold, cold_executor = _ab_sweep(
        CFG, "daxpy", N_VALUES, M_VALUES, "extended", cache=cold_cache)
    assert cold == naive_cold
    assert cold_executor.calibration_store_hits == 0
    assert cold_executor.calibration_store_misses > 0

    # A fresh cache object over the same directory, and N values the
    # store has never seen: every prefix must come from the store.
    warm_cache = SweepCache(str(tmp_path))
    warm_n = [7, 300, 700]
    naive_warm, warm, warm_executor = _ab_sweep(
        CFG, "daxpy", warm_n, M_VALUES, "extended", cache=warm_cache)
    assert warm == naive_warm
    assert warm_executor.simulated_points == 0
    assert warm_executor.prefixes_calibrated == 0
    assert warm_executor.calibration_store_hits > 0
    assert warm_executor.planned_points == len(warm_n) * len(M_VALUES)


def test_store_entries_are_shared_between_auto_and_explicit_variant(
        tmp_path):
    """Keys speak the *resolved* variant, so ``auto`` on an extended
    SoC warms the store for an explicit ``extended`` request."""
    cache = SweepCache(str(tmp_path))
    first = SweepExecutor(cache=cache)
    first.run(CFG, "daxpy", [64, 128], M_VALUES, variant="auto")

    second = SweepExecutor(cache=SweepCache(str(tmp_path)))
    warm = second.run(CFG, "daxpy", [96], M_VALUES, variant="extended")
    assert second.simulated_points == 0
    with _env(NAIVE_MPREDICT_ENV, "1"):
        reference = SweepExecutor().run(CFG, "daxpy", [96], M_VALUES,
                                        variant="extended")
    assert warm.points == reference.points


def test_gate_disables_prediction_and_the_store(tmp_path):
    """``REPRO_NAIVE_MPREDICT`` must restore PR 7 exactly: no models,
    no predictions, and a calibration store that stays untouched."""
    cache = SweepCache(str(tmp_path))
    with _env(NAIVE_MPREDICT_ENV, "1"):
        executor = SweepExecutor(cache=cache)
        result = executor.run(CFG, "daxpy", N_VALUES, M_VALUES,
                              variant="extended")
    assert executor.mmodels_fitted == 0
    assert executor.prefixes_predicted == 0
    assert executor.calibration_store_hits == 0
    assert executor.calibration_store_misses == 0
    assert executor.simulated_points == len(M_VALUES)
    # Only measured points reached the disk layer — one record per
    # grid point, no prefix or M-model files alongside them.
    assert len(list(tmp_path.glob("*.json"))) == len(result)


# ----------------------------------------------------------------------
# The fit and the payload codecs
# ----------------------------------------------------------------------
def test_fit_refuses_fractional_slopes_and_degenerate_anchors():
    lo = batch._Prefix(10, 20, 30, 40)
    hi = batch._Prefix(13, 26, 39, 52)     # slopes 1, 2, 3, 4 over span 3
    model = batch.fit_prefix_model(1, 2, lo, 5, hi)
    assert model is not None
    assert model.slope == (1, 2, 3, 4)
    assert model.predict(2) == lo
    assert model.predict(5) == hi
    assert model.predict(3) == batch._Prefix(11, 22, 33, 44)
    # Interpolation only: outside the anchor span or the declared
    # affine floor the model refuses to speak.
    assert model.predict(1) is None
    assert model.predict(6) is None
    assert batch.MPrefixModel(min_m=3, m_lo=2, m_hi=5,
                              base=lo.fields(),
                              slope=model.slope).predict(2) is None
    # A non-integer slope refutes the affinity claim outright.
    assert batch.fit_prefix_model(
        1, 2, lo, 5, batch._Prefix(14, 26, 39, 52)) is None
    # Coinciding or inverted anchors cannot define a line.
    assert batch.fit_prefix_model(1, 3, lo, 3, hi) is None
    assert batch.fit_prefix_model(1, 5, lo, 2, hi) is None


def test_prefix_payload_round_trips_and_rejects_malformed():
    prefix = batch._Prefix(10, 20, 30, 40)
    payload = batch.encode_prefix(prefix)
    assert batch.decode_prefix(payload) == prefix
    assert batch.decode_prefix(None) is None
    assert batch.decode_prefix({}) is None
    bad = dict(payload)
    bad["dispatch_done"] = "30"
    assert batch.decode_prefix(bad) is None
    bad["dispatch_done"] = True           # bool is not a cycle count
    assert batch.decode_prefix(bad) is None


def test_mmodel_payload_round_trips_and_rejects_malformed():
    model = batch.MPrefixModel(min_m=1, m_lo=2, m_hi=6,
                               base=(10, 20, 30, 40), slope=(1, 2, 3, 4))
    payload = batch.encode_mmodel(model)
    assert batch.decode_mmodel(payload) == model
    assert batch.decode_mmodel(None) is None
    assert batch.decode_mmodel({}) is None
    for key, value in [("base", [10, 20, 30]), ("slope", "nope"),
                       ("m_lo", 6), ("min_m", None),
                       ("base", [10, 20, 30, True])]:
        bad = dict(payload)
        bad[key] = value
        assert batch.decode_mmodel(bad) is None, (key, value)
