"""Property tests: phase fast-forwarding is bit-identical, A/B'd.

Three timing invariants back the fast-forward layer:

1. Bulk channel timing (DMA reservations + closed-form serialization)
   measures exactly what the naive setup-then-transfer event chain
   measures (``REPRO_NAIVE_CHANNEL`` selects the reference).
2. Closed-form barrier/compute-phase crossings measure exactly what
   spawning one process per worker core and simulating every arrival
   measures (``REPRO_NAIVE_BARRIER`` selects the reference).
3. Restoring a copy-on-write boot snapshot yields a system
   indistinguishable from a field-by-field ``reset()`` and from fresh
   construction (``REPRO_NAIVE_SNAPSHOT`` selects the reset path).

Each invariant is sampled over grid points and program shapes (plain,
overlapped, concurrent) with the full observable fingerprint compared:
cycles, retired ops, per-cluster DMA/worker statistics, shared-channel
occupancy, and the NoC transaction log.
"""

import contextlib
import os

import hypothesis
import hypothesis.strategies as st
import pytest

from repro.core.concurrent import ConcurrentJob, offload_concurrent
from repro.core.offload import offload
from repro.core.overlap import offload_overlapped
from repro.flags import (
    FRESH_SYSTEMS_ENV,
    NAIVE_BARRIER_ENV,
    NAIVE_CHANNEL_ENV,
    NAIVE_SNAPSHOT_ENV,
)
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.soc.pool import SystemPool

SETTINGS = hypothesis.settings(
    max_examples=5, deadline=None,
    suppress_health_check=[
        hypothesis.HealthCheck.too_slow,
        # The autouse gate-clearing fixture is env-only and idempotent
        # across examples, so function scope is safe.
        hypothesis.HealthCheck.function_scoped_fixture,
    ])

N_VALUES = [24, 32, 48, 64, 96]
M_VALUES = [1, 2, 4]
VARIANTS = ["baseline", "extended"]


@pytest.fixture(autouse=True)
def _fast_paths_on(monkeypatch):
    """Pin the fast paths on regardless of ambient gates.

    The CI ``ab-gates`` matrix runs the whole suite with each
    ``REPRO_*`` gate set; these tests enable the reference paths
    *explicitly* per invariant, so the ambient environment must not
    pre-disable the fast side they compare against."""
    for name in (NAIVE_CHANNEL_ENV, NAIVE_BARRIER_ENV,
                 NAIVE_SNAPSHOT_ENV, FRESH_SYSTEMS_ENV):
        monkeypatch.delenv(name, raising=False)


@contextlib.contextmanager
def _env(name, value):
    saved = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if saved is None:
            del os.environ[name]
        else:
            os.environ[name] = saved


def _fingerprint(system, runtime_cycles):
    """Everything an observer could measure about one program run."""
    noc = system.noc
    return {
        "runtime": runtime_cycles,
        "retired": system.host.retired_operations,
        "loads": system.host.lsu.loads_issued,
        "stores": system.host.lsu.stores_issued,
        "host_requests": noc.host_port.requests,
        "host_busy": noc.host_port.busy_cycles,
        "amo_requests": noc.amo_port.requests,
        "jobs": tuple(c.jobs_completed for c in system.clusters),
        "dma": tuple((c.dma.transfers_in, c.dma.bytes_in,
                      c.dma.transfers_out, c.dma.bytes_out)
                     for c in system.clusters),
        "workers": tuple(w.busy_cycles for c in system.clusters
                         for w in c.workers),
        "read_channel": (system.read_channel.requests,
                         system.read_channel.busy_cycles,
                         system.read_channel.bytes_moved),
        "write_channel": (system.write_channel.requests,
                          system.write_channel.busy_cycles,
                          system.write_channel.bytes_moved),
        "transactions": sorted(
            (txn.kind.name, txn.issued_at, txn.source, txn.addresses)
            for txn in noc.transactions),
        "end": system.sim.now,
    }


def _naive_and_fast(gate, run):
    """Run ``run(system) -> runtime`` twice: ``gate`` enabled, then the
    fast-forward path; returns both fingerprints."""
    config = SoCConfig.extended(num_clusters=4)
    with _env(gate, "1"):
        system = ManticoreSystem(config)
        naive = _fingerprint(system, run(system))
    system = ManticoreSystem(config)
    fast = _fingerprint(system, run(system))
    return naive, fast


# ----------------------------------------------------------------------
# Invariant 1: bulk channel timing == naive setup-then-transfer chain
# ----------------------------------------------------------------------
@SETTINGS
@hypothesis.given(n=st.sampled_from(N_VALUES), m=st.sampled_from(M_VALUES),
                  variant=st.sampled_from(VARIANTS))
def test_channel_ff_matches_naive_offload(n, m, variant):
    naive, fast = _naive_and_fast(
        NAIVE_CHANNEL_ENV,
        lambda system: offload(system, "daxpy", n, m,
                               variant=variant).runtime_cycles)
    assert fast == naive


@SETTINGS
@hypothesis.given(n_a=st.sampled_from(N_VALUES), n_b=st.sampled_from(N_VALUES))
def test_channel_ff_matches_naive_concurrent(n_a, n_b):
    """Concurrent jobs contend on the shared channels with staggered,
    size-dependent arrivals — the worst case for reservation windows."""
    jobs = (ConcurrentJob(kernel_name="daxpy", n=n_a, num_clusters=2),
            ConcurrentJob(kernel_name="daxpy", n=n_b, num_clusters=2))
    naive, fast = _naive_and_fast(
        NAIVE_CHANNEL_ENV,
        lambda system: offload_concurrent(system, jobs).makespan_cycles)
    assert fast == naive


@SETTINGS
@hypothesis.given(accel_n=st.sampled_from(N_VALUES),
                  host_n=st.sampled_from([16, 32, 256]))
def test_channel_ff_matches_naive_overlapped(accel_n, host_n):
    naive, fast = _naive_and_fast(
        NAIVE_CHANNEL_ENV,
        lambda system: offload_overlapped(
            system, "daxpy", accel_n, 2, "daxpy", host_n).total_cycles)
    assert fast == naive


# ----------------------------------------------------------------------
# Invariant 2: closed-form crossings == spawned per-core arrivals
# ----------------------------------------------------------------------
@SETTINGS
@hypothesis.given(n=st.sampled_from(N_VALUES), m=st.sampled_from(M_VALUES),
                  variant=st.sampled_from(VARIANTS))
def test_barrier_ff_matches_naive_offload(n, m, variant):
    naive, fast = _naive_and_fast(
        NAIVE_BARRIER_ENV,
        lambda system: offload(system, "daxpy", n, m,
                               variant=variant).runtime_cycles)
    assert fast == naive


@SETTINGS
@hypothesis.given(n_a=st.sampled_from(N_VALUES), n_b=st.sampled_from(N_VALUES))
def test_barrier_ff_matches_naive_concurrent(n_a, n_b):
    """Two independent jobs keep separate fabric-barrier groups open at
    once; crossings interleave with foreign channel traffic."""
    jobs = (ConcurrentJob(kernel_name="daxpy", n=n_a, num_clusters=2),
            ConcurrentJob(kernel_name="daxpy", n=n_b, num_clusters=2))
    naive, fast = _naive_and_fast(
        NAIVE_BARRIER_ENV,
        lambda system: offload_concurrent(system, jobs).makespan_cycles)
    assert fast == naive


def test_fastforward_skips_simulated_events():
    """The fast paths must actually fast-forward, not just agree.

    With both reference paths forced, every DMA hop and barrier arrival
    is a separate scheduled event; the closed forms collapse them.
    Compare simulator sequence numbers as a proxy, and check the
    engagement counters on the fast side.
    """
    config = SoCConfig.baseline(num_clusters=4)
    with _env(NAIVE_CHANNEL_ENV, "1"), _env(NAIVE_BARRIER_ENV, "1"):
        system = ManticoreSystem(config)
        naive = offload(system, "daxpy", 4096, 4)
        naive_events = system.sim._sequence
        naive_stats = system.fastforward_stats()
    system = ManticoreSystem(config)
    fast = offload(system, "daxpy", 4096, 4)
    fast_events = system.sim._sequence
    fast_stats = system.fastforward_stats()

    assert fast.runtime_cycles == naive.runtime_cycles
    assert fast_events < naive_events
    assert naive_stats["dma_transfers"] == 0
    assert naive_stats["compute_phases"] == 0
    assert fast_stats["dma_transfers"] > 0
    assert fast_stats["dma_fallbacks"] == 0
    assert fast_stats["compute_phases"] > 0
    assert fast_stats["barrier_crossings"] == fast_stats["compute_phases"]
    assert fast_stats["fabric_arrivals"] == 4


# ----------------------------------------------------------------------
# Invariant 3: snapshot restore == reset() == fresh construction
# ----------------------------------------------------------------------
def _pooled_fingerprint(config, n, m, variant):
    """Dirty a pooled system on two points, then measure a third on the
    re-leased instance.  The first reuse resets field by field (and, on
    the fast path, captures the digest's boot snapshot); the second
    reuse is the one the snapshot-restore path can serve."""
    pool = SystemPool()
    with pool.lease(config) as system:
        offload(system, "daxpy", 2 * n, 1, variant=variant)
    with pool.lease(config) as system:
        offload(system, "daxpy", 4 * n, 2, variant=variant)
    with pool.lease(config) as system:
        result = offload(system, "daxpy", n, m, variant=variant)
        fingerprint = _fingerprint(system, result.runtime_cycles)
    return pool, fingerprint


@SETTINGS
@hypothesis.given(n=st.sampled_from(N_VALUES), m=st.sampled_from(M_VALUES),
                  variant=st.sampled_from(VARIANTS))
def test_snapshot_restore_matches_reset_and_fresh(n, m, variant):
    config = SoCConfig.extended(num_clusters=4)

    fresh = ManticoreSystem(config)
    result = offload(fresh, "daxpy", n, m, variant=variant)
    print_fresh = _fingerprint(fresh, result.runtime_cycles)

    with _env(NAIVE_SNAPSHOT_ENV, "1"):
        naive_pool, print_reset = _pooled_fingerprint(config, n, m, variant)
    fast_pool, print_restored = _pooled_fingerprint(config, n, m, variant)

    # The reference path resets field by field; the fast path restores
    # the boot snapshot.  Both must engage their own mechanism...
    assert naive_pool.restores == 0
    assert fast_pool.restores == 1
    # ...and neither may be distinguishable from a fresh system.
    assert print_restored == print_reset == print_fresh


@SETTINGS
@hypothesis.given(n=st.sampled_from(N_VALUES), m=st.sampled_from(M_VALUES))
def test_warm_state_fork_replays_identically(n, m):
    """Snapshots taken on a *warm* quiescent system fork its timeline:
    restore must make diverged futures replay bit-identically."""
    config = SoCConfig.baseline(num_clusters=4)
    system = ManticoreSystem(config)
    offload(system, "daxpy", 2 * n, 1)  # warm the system up
    warm = system.snapshot()

    first = offload(system, "daxpy", n, m)
    print_first = _fingerprint(system, first.runtime_cycles)

    system.restore(warm)
    other = offload(system, "daxpy", 3 * n, 2)  # diverge: different future
    print_other = _fingerprint(system, other.runtime_cycles)

    system.restore(warm)
    replay = offload(system, "daxpy", n, m)
    print_replay = _fingerprint(system, replay.runtime_cycles)

    assert print_replay == print_first
    assert print_other != print_first
    assert first.trace.phase_summary() == replay.trace.phase_summary()
