"""Property-based tests over the full system: traces, timing laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offload import offload, offload_daxpy
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system():
    return ManticoreSystem(SoCConfig.extended(num_clusters=8))


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=1, max_value=600),
       st.integers(min_value=1, max_value=8))
def test_trace_phase_invariants_hold_for_any_shape(n, m):
    result = offload_daxpy(ext_system(), n=n, num_clusters=m, verify=False)
    trace = result.trace
    # Host milestones are ordered.
    assert (trace.start_cycle <= trace.descriptor_written
            <= trace.dispatch_start <= trace.dispatch_done
            <= trace.end_cycle)
    # Every dispatched cluster appears, with ordered phases.
    assert len(trace.clusters) == m
    for cluster in trace.clusters:
        assert trace.dispatch_start <= cluster.doorbell
        assert cluster.doorbell <= cluster.awake <= cluster.decoded
        assert cluster.decoded <= cluster.completion_signalled
        assert cluster.completion_signalled <= trace.end_cycle
    # The summary is self-consistent.
    summary = trace.phase_summary()
    assert summary["total"] == (summary["setup"] + summary["dispatch"]
                                + summary["completion_wait"])
    assert summary["sync_overhead"] >= 0


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=8, max_value=1024),
       st.integers(min_value=1, max_value=8),
       st.sampled_from(["daxpy", "memcpy", "scale", "vecsum"]))
def test_channel_traffic_matches_kernel_accounting(n, m, kernel_name):
    from repro.kernels import get_kernel, split_range
    system = ext_system()
    offload(system, kernel_name, n, m, verify=False)
    kernel = get_kernel(kernel_name)
    slices = split_range(n, m)
    expected_in = sum(kernel.slice_bytes_in(s.lo, s.hi, n) for s in slices)
    expected_out = sum(kernel.slice_bytes_out(s.lo, s.hi, n) for s in slices)
    assert system.read_channel.bytes_moved == expected_in
    assert system.write_channel.bytes_moved == expected_out


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=32, max_value=512),
       st.integers(min_value=2, max_value=8))
def test_baseline_never_beats_extended(n, m):
    base = offload_daxpy(
        ManticoreSystem(SoCConfig.baseline(num_clusters=8)),
        n=n, num_clusters=m, verify=False)
    ext = offload_daxpy(ext_system(), n=n, num_clusters=m, verify=False)
    assert ext.runtime_cycles <= base.runtime_cycles


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=1, max_value=300),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_offload_is_pure_in_its_inputs(n, m, seed):
    """Running the same job twice on fresh systems gives identical
    cycles and identical bits."""
    import numpy
    first = offload_daxpy(ext_system(), n=n, num_clusters=m, seed=seed)
    second = offload_daxpy(ext_system(), n=n, num_clusters=m, seed=seed)
    assert first.runtime_cycles == second.runtime_cycles
    numpy.testing.assert_array_equal(first.outputs["y"],
                                     second.outputs["y"])
