"""Property-based tests for kernels, work splitting, and the ABI."""

import numpy
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import abi
from repro.kernels import get_kernel, kernel_names, split_range
from repro.kernels.base import KernelTiming


# ----------------------------------------------------------------------
# split_range invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=64))
def test_split_range_partitions_exactly(n, parts):
    slices = split_range(n, parts)
    assert len(slices) == parts
    assert slices[0].lo == 0
    assert slices[-1].hi == n
    for earlier, later in zip(slices, slices[1:]):
        assert earlier.hi == later.lo
    assert sum(s.elements for s in slices) == n


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=64))
def test_split_range_is_balanced(n, parts):
    sizes = [s.elements for s in split_range(n, parts)]
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)  # remainder goes first


# ----------------------------------------------------------------------
# Kernel timing invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=10_000))
def test_daxpy_timing_is_monotone(a, b):
    timing = get_kernel("daxpy").timing
    low, high = sorted([a, b])
    assert timing.cycles(low) <= timing.cycles(high)


@given(st.integers(min_value=0, max_value=100),
       st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=5_000))
def test_timing_bounds(setup, num, den, elements):
    timing = KernelTiming(setup_cycles=setup, cpe_num=num, cpe_den=den)
    cycles = timing.cycles(elements)
    exact = setup + num * elements / den
    assert exact <= cycles < exact + 1


# ----------------------------------------------------------------------
# Functional equivalence under arbitrary slicing
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=30)
@given(st.sampled_from(sorted(kernel_names())),
       st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_sliced_reference_is_slice_count_invariant_for_elementwise(
        kernel_name, n, num_slices, seed):
    """Element-wise kernels: the result must not depend on the split."""
    kernel = get_kernel(kernel_name)
    out_name = kernel.output_names[0]
    if kernel.output_length(out_name, n, 1) \
            != kernel.output_length(out_name, n, num_slices):
        return  # reductions legitimately depend on the split shape
    rng = numpy.random.default_rng(seed)
    inputs = kernel.make_inputs(n, rng)
    scalars = {name: 1.25 for name in kernel.scalar_names}
    sliced = kernel.reference(n, scalars, inputs, num_slices)
    whole = kernel.reference(n, scalars, inputs, 1)
    for name in kernel.output_names:
        numpy.testing.assert_allclose(sliced[name], whole[name], rtol=1e-12)


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=32),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_reduction_partials_sum_to_total(n, num_slices, seed):
    kernel = get_kernel("vecsum")
    rng = numpy.random.default_rng(seed)
    inputs = kernel.make_inputs(n, rng)
    partials = kernel.reference(n, {}, inputs, num_slices)["partials"]
    assert partials.shape == (num_slices,)
    numpy.testing.assert_allclose(partials.sum(), inputs["x"].sum(),
                                  rtol=1e-9, atol=1e-12)


# ----------------------------------------------------------------------
# ABI roundtrip
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=50)
@given(st.sampled_from(sorted(kernel_names())),
       st.integers(min_value=1, max_value=1 << 40),
       st.integers(min_value=1, max_value=1024),
       st.sampled_from([abi.SYNC_MODE_AMO, abi.SYNC_MODE_SYNCUNIT]),
       st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.integers(min_value=0, max_value=1 << 48))
def test_descriptor_roundtrip_over_arbitrary_jobs(kernel_name, n, clusters,
                                                  sync_mode, scalar, addr):
    kernel = abi.get_kernel(kernel_name)
    desc = abi.JobDescriptor(
        kernel_name=kernel_name, n=n, num_clusters=clusters,
        sync_mode=sync_mode, completion_addr=addr,
        scalars={name: scalar for name in kernel.scalar_names},
        input_addrs={name: addr + 8 * i
                     for i, name in enumerate(kernel.input_names)},
        output_addrs={name: addr + 800 + 8 * i
                      for i, name in enumerate(kernel.output_names)})
    words = abi.encode_descriptor(desc)
    assert abi.decode_descriptor(words) == desc


@given(st.floats(allow_nan=False, width=64))
def test_float_bits_roundtrip_property(value):
    assert abi.bits_to_float(abi.float_to_bits(value)) == value
