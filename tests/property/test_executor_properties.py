"""Property tests: parallel sweep execution is bit-identical to serial."""

import hypothesis
import hypothesis.strategies as st

from repro.core.cache import SweepCache
from repro.core.executor import SweepExecutor
from repro.soc.config import SoCConfig


CFG = SoCConfig.extended(num_clusters=4)

grids = st.tuples(
    st.lists(st.sampled_from([24, 32, 48, 64, 96]), min_size=1, max_size=3,
             unique=True),
    st.lists(st.sampled_from([1, 2, 4]), min_size=1, max_size=3,
             unique=True),
)


@hypothesis.settings(max_examples=5, deadline=None,
                     suppress_health_check=[hypothesis.HealthCheck.too_slow])
@hypothesis.given(grid=grids, jobs=st.sampled_from([2, 3]))
def test_parallel_sweep_is_bit_identical_to_serial(grid, jobs):
    n_values, m_values = grid
    serial = SweepExecutor(jobs=1).run(CFG, "daxpy", n_values, m_values)
    parallel = SweepExecutor(jobs=jobs, chunk_size=1).run(
        CFG, "daxpy", n_values, m_values)
    assert parallel == serial
    assert [(p.n, p.num_clusters) for p in parallel] == \
        [(n, m) for n in n_values for m in m_values]


@hypothesis.settings(max_examples=5, deadline=None,
                     suppress_health_check=[hypothesis.HealthCheck.too_slow])
@hypothesis.given(grid=grids)
def test_cache_replay_is_bit_identical_to_simulation(grid):
    n_values, m_values = grid
    executor = SweepExecutor(cache=SweepCache())
    fresh = executor.run(CFG, "daxpy", n_values, m_values)
    replayed = executor.run(CFG, "daxpy", n_values, m_values)
    assert replayed == fresh
    assert executor.simulated_points == 0
