"""Property-based end-to-end tests: arbitrary jobs through the full SoC."""

import numpy
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offload import offload
from repro.mem import MainMemory
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=1, max_value=300),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_daxpy_correct_for_arbitrary_shapes(n, m, seed):
    system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
    rng = numpy.random.default_rng(seed)
    x = rng.normal(size=n)
    y = rng.normal(size=n)
    a = float(rng.normal())
    result = offload(system, "daxpy", n, m, scalars={"a": a},
                     inputs={"x": x, "y": y})
    numpy.testing.assert_allclose(result.outputs["y"], a * x + y,
                                  rtol=1e-10, atol=1e-12)


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=1, max_value=300),
       st.integers(min_value=1, max_value=8),
       st.sampled_from(["baseline", "multicast_only", "hw_sync_only",
                        "extended"]))
def test_all_variants_produce_identical_results(n, m, variant):
    """Runtime variants change timing, never functional results."""
    system = ManticoreSystem(SoCConfig.extended(num_clusters=8))
    result = offload(system, "daxpy", n, m, variant=variant, seed=5)
    reference = offload(
        ManticoreSystem(SoCConfig.extended(num_clusters=8)),
        "daxpy", n, m, variant="extended", seed=5)
    numpy.testing.assert_array_equal(result.outputs["y"],
                                     reference.outputs["y"])


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=8, max_value=512))
def test_wider_offloads_never_slower_on_extended(m, n):
    """On the extended design runtime is non-increasing in M (Fig. 1)."""
    narrower = offload(ManticoreSystem(SoCConfig.extended(num_clusters=8)),
                       "daxpy", n, m - 1, verify=False)
    wider = offload(ManticoreSystem(SoCConfig.extended(num_clusters=8)),
                    "daxpy", n, m, verify=False)
    # Allow tiny ceil()-grade wobble on ragged splits.
    assert wider.runtime_cycles <= narrower.runtime_cycles + 8


@settings(deadline=None, max_examples=20)
@given(st.lists(st.tuples(st.integers(min_value=8, max_value=4096),
                          st.integers(min_value=1, max_value=512)),
                min_size=1, max_size=20),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_memory_survives_arbitrary_alloc_write_read_sequences(blocks, seed):
    memory = MainMemory(size_bytes=8 * 1024 * 1024, base=0x8000_0000)
    rng = numpy.random.default_rng(seed)
    written = []
    for nbytes, align_hint in blocks:
        align = 1 << (align_hint % 7)  # 1..64
        align = max(align, 8)
        addr = memory.alloc((nbytes + 7) // 8 * 8, align=align)
        data = rng.integers(0, 256, size=(nbytes + 7) // 8 * 8,
                            dtype=numpy.uint8)
        memory.write_bytes(addr, data)
        written.append((addr, data))
    for addr, data in written:
        numpy.testing.assert_array_equal(memory.read_bytes(addr, data.size),
                                         data)
