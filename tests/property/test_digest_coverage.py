"""Digest coverage: every config/tile knob must change the cache key.

``SoCConfig.digest()`` is the cache key for the sweep cache, the
system pool and the persistent calibration store, so a knob that does
NOT change the digest would silently serve stale timing across
configurations.  These properties perturb arbitrary fields — of the
config itself and of any :class:`TileClass` embedded in its fabric —
and require the digest to move.
"""

import dataclasses

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.soc.config import SoCConfig
from repro.soc.tiles import INHERITED_FIELDS, SNITCH, TileClass, TileGroup


def _scalar_field_names():
    names = []
    for field in dataclasses.fields(SoCConfig):
        if field.name == "fabric":
            continue  # perturbed structurally by the TileClass property
        names.append(field.name)
    return names


def _perturb(value):
    """A same-type value guaranteed to differ from ``value``."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if value is None:  # Optional budgets: install a generous one
        return 1e9
    raise AssertionError(f"unhandled field type: {value!r}")


@settings(max_examples=60, deadline=None)
@given(field=st.sampled_from(_scalar_field_names()),
       extended=st.booleans())
def test_any_config_field_perturbation_changes_digest(field, extended):
    base = (SoCConfig.extended(num_clusters=4) if extended
            else SoCConfig.baseline(num_clusters=4))
    try:
        changed = dataclasses.replace(
            base, **{field: _perturb(getattr(base, field))})
    except ConfigError:
        assume(False)  # perturbation violated validation; not a cache key
    assert changed.digest() != base.digest(), field


_TILE_FIELD_VALUES = {
    # concrete overrides that differ from the extended config's knobs
    "cores_per_tile": 6,
    "tcdm_bytes": 1 << 16,
    "tcdm_banks": 16,
    "wake_latency": 99,
    "dm_decode_cycles": 77,
    "dma_setup_cycles": 55,
    "barrier_latency": 33,
    "worker_wake_latency": 11,
    "tile_power": 42.5,
    "area_mm2": 2.75,
}


@settings(max_examples=60, deadline=None)
@given(field=st.sampled_from(sorted(_TILE_FIELD_VALUES)),
       group_index=st.integers(min_value=0, max_value=1))
def test_any_tile_class_field_perturbation_changes_digest(field,
                                                          group_index):
    """Perturbing one field of one tile class re-keys the whole config."""
    def fabric_config(custom):
        groups = [TileGroup(name="a", tile=SNITCH, count=2),
                  TileGroup(name="b", tile=SNITCH, count=2)]
        groups[group_index] = dataclasses.replace(
            groups[group_index], tile=custom)
        return SoCConfig.with_fabric(groups, multicast=True, hw_sync=True)

    base = fabric_config(TileClass(name="custom"))
    value = _TILE_FIELD_VALUES[field]
    changed = fabric_config(TileClass(name="custom", **{field: value}))
    assert changed.digest() != base.digest(), field
    # the inherited default must also differ from a concrete override
    # that happens to EQUAL the inherited value: None vs value is a
    # representational difference the digest must keep (timing-equal
    # but differently-resolved configs may diverge under overrides)
    if field in INHERITED_FIELDS:
        inherited = getattr(base, INHERITED_FIELDS[field])
        same_value = fabric_config(
            TileClass(name="custom", **{field: inherited}))
        assert same_value.digest() != base.digest(), field


def test_kernel_rate_table_feeds_the_digest():
    def config_for(rates):
        tile = TileClass(name="custom", kernel_rates=rates)
        return SoCConfig.with_fabric(
            [TileGroup(name="g", tile=tile, count=4)],
            multicast=True, hw_sync=True)

    base = config_for((("daxpy", (40, 13, 20)),))
    assert config_for(()).digest() != base.digest()
    assert config_for((("daxpy", (40, 13, 21)),)).digest() != base.digest()
    assert config_for((("daxpy", (41, 13, 20)),)).digest() != base.digest()
    assert (config_for((("daxpy", (40, 13, 20)), ("dot", (40, 3, 8))))
            .digest() != base.digest())
