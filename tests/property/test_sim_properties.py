"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SerialResource, Simulator


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=50))
def test_time_is_monotone_over_any_schedule(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda arg: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=30))
def test_same_cycle_callbacks_keep_insertion_order(delays):
    sim = Simulator()
    observed = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, lambda arg, i=index, d=delay: observed.append((d, i)))
    sim.run()
    # Stable sort by delay == execution order.
    assert observed == sorted(observed, key=lambda pair: pair[0])


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.integers(min_value=0, max_value=50)),
                min_size=1, max_size=30))
def test_serial_resource_never_overlaps_service(requests):
    """Service intervals are disjoint and total busy time is the sum."""
    sim = Simulator()
    resource = SerialResource(sim, "bus")
    intervals = []

    def requester(arrival, cycles):
        yield arrival
        finish = yield resource.request(cycles)
        intervals.append((finish - cycles, finish))

    for arrival, cycles in requests:
        sim.spawn(requester(arrival, cycles))
    sim.run()
    intervals.sort()
    for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
        assert end_a <= start_b
    assert resource.busy_cycles == sum(c for _a, c in requests)


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                max_size=20))
def test_process_delays_accumulate_exactly(delays):
    sim = Simulator()

    def body():
        for delay in delays:
            yield delay
        return sim.now

    proc = sim.spawn(body())
    sim.run()
    assert proc.value == sum(delays)


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=10))
def test_all_of_fires_at_latest_child(count, spacing):
    sim = Simulator()
    events = [sim.event() for _ in range(count)]
    for index, event in enumerate(events):
        sim.schedule(index * spacing, lambda arg, e=event: e.trigger(sim.now))
    combo = sim.all_of(events)
    sim.run(until=combo)
    assert sim.now == (count - 1) * spacing
