"""Property tests: batched sweep timing is bit-identical, A/B'd.

The :class:`~repro.core.batch.BatchPlanner` times most grid points of a
sweep as closed-form array arithmetic seeded from one calibration
simulation per offload-width group.  ``REPRO_NAIVE_BATCH`` selects the
reference path (every point through the event engine); these tests
assert the two paths return equal :class:`~repro.core.sweep.SweepPoint`
streams — cycles and every phase — across kernels, problem sizes
(including N < M empty-slice shapes), offload widths and all four
protocol variants, *and* that the planner actually engaged where the
grid is provable (agreement through silent fallback would be vacuous).

The fallback decision itself is property-tested too: unprovable
strategy types, too-small groups and structurally refused points must
run through the event engine and still match the reference stream.
"""

import contextlib
import os

import hypothesis
import hypothesis.strategies as st
import pytest

from repro.core import batch
from repro.core.executor import SweepExecutor
from repro.core.offload import offload
from repro.flags import (
    FRESH_SYSTEMS_ENV,
    NAIVE_BATCH_ENV,
    NAIVE_MPREDICT_ENV,
)
from repro.kernels.base import Kernel
from repro.kernels.registry import _REGISTRY as _KERNEL_REGISTRY
from repro.kernels.registry import get_kernel, register_kernel
from repro.runtime.strategies import _REGISTRY as _VARIANT_REGISTRY
from repro.runtime.strategies import (
    AMO_POLL,
    SequentialStoreDispatch,
    register_variant,
)
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem

SETTINGS = hypothesis.settings(
    max_examples=5, deadline=None,
    suppress_health_check=[
        hypothesis.HealthCheck.too_slow,
        # The autouse gate-clearing fixture is env-only and idempotent
        # across examples, so function scope is safe.
        hypothesis.HealthCheck.function_scoped_fixture,
    ])

CFG = SoCConfig.extended(num_clusters=4)
#: Includes N < M shapes (empty slices) and N = 1 (single element).
N_VALUES = [1, 3, 24, 32, 96, 256]
M_VALUES = [1, 2, 3, 4]
VARIANTS = ["baseline", "multicast_only", "hw_sync_only", "extended"]


@pytest.fixture(autouse=True)
def _batching_on(monkeypatch):
    """Pin the batched path on regardless of ambient gates.

    The CI ``ab-gates`` matrix runs the whole suite with each
    ``REPRO_*`` gate set; these tests set the reference side
    explicitly, so the ambient environment must not pre-disable the
    fast side they compare against."""
    monkeypatch.delenv(NAIVE_BATCH_ENV, raising=False)
    monkeypatch.delenv(NAIVE_MPREDICT_ENV, raising=False)
    monkeypatch.delenv(FRESH_SYSTEMS_ENV, raising=False)


@contextlib.contextmanager
def _env(name, value):
    saved = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if saved is None:
            del os.environ[name]
        else:
            os.environ[name] = saved


def _ab_sweep(config, kernel_name, n_values, m_values, variant,
              **kwargs):
    """Run one grid through the reference and batched paths.

    Returns ``(naive_points, fast_points, fast_executor)`` so callers
    can assert equality *and* inspect how the planner behaved.
    """
    with _env(NAIVE_BATCH_ENV, "1"):
        naive = SweepExecutor().run(config, kernel_name, n_values,
                                    m_values, variant=variant, **kwargs)
    executor = SweepExecutor()
    fast = executor.run(config, kernel_name, n_values, m_values,
                        variant=variant, **kwargs)
    return naive.points, fast.points, executor


# ----------------------------------------------------------------------
# The identity: batched points == event-engine points, bit for bit
# ----------------------------------------------------------------------
@SETTINGS
@hypothesis.given(kernel=st.sampled_from(["daxpy", "memcpy", "vecsum",
                                          "stencil3"]),
                  variant=st.sampled_from(VARIANTS))
def test_batched_matches_naive_across_kernels_and_variants(kernel, variant):
    naive, fast, executor = _ab_sweep(CFG, kernel, N_VALUES, M_VALUES,
                                      variant)
    assert fast == naive
    # Agreement must come from real predictions, not wholesale fallback:
    # at most one calibration per M group (fewer when the affine
    # M-model predicts a group outright), everything else planned.
    assert executor.planned_points > 0
    assert 0 < executor.simulated_points <= len(M_VALUES)
    assert executor.planned_points + executor.simulated_points \
        == len(N_VALUES) * len(M_VALUES)


@SETTINGS
@hypothesis.given(seed=st.integers(min_value=0, max_value=3),
                  scalar=st.sampled_from([1.0, -0.5, 3.25]))
def test_batched_matches_naive_over_job_coordinates(seed, scalar):
    naive, fast, executor = _ab_sweep(
        CFG, "daxpy", N_VALUES, M_VALUES, "extended",
        seed=seed, scalars={"a": scalar})
    assert fast == naive
    assert executor.planned_points > 0


def test_batched_matches_naive_on_wide_fabric_with_empty_slices():
    """A 32-cluster fabric with N down to 1: most clusters get empty
    slices, exercising the release-cycle completion path end to end."""
    config = SoCConfig.extended()
    naive, fast, executor = _ab_sweep(
        config, "daxpy", [1, 5, 40, 512], [1, 31, 32], "extended")
    assert fast == naive
    assert executor.planned_points > 0


# ----------------------------------------------------------------------
# The fallback decision
# ----------------------------------------------------------------------
def test_naive_gate_disables_the_planner():
    with _env(NAIVE_BATCH_ENV, "1"):
        executor = SweepExecutor()
        result = executor.run(CFG, "daxpy", [64, 128], [1, 2])
    assert executor.planned_points == 0
    assert executor.batch_fallback_points == 0
    assert executor.simulated_points == len(result)


def test_single_n_groups_ride_the_m_model():
    """A lone provable point per group gains nothing from calibrating
    *itself*, but it can anchor (or be predicted by) the affine
    M-model: a single-N M-sweep over a sequential-dispatch variant
    fits from three anchors and predicts the rest."""
    naive, fast, executor = _ab_sweep(CFG, "daxpy", [96], M_VALUES,
                                      "baseline")
    assert fast == naive
    assert executor.mmodels_fitted == 1
    assert executor.simulated_points == 3       # lo, holdout, hi anchors
    assert executor.planned_points == len(M_VALUES) - 3
    assert executor.batch_fallback_points == 0


def test_single_n_groups_are_not_calibrated_under_the_gate():
    """With ``REPRO_NAIVE_MPREDICT`` set the PR-7 rule is back: a lone
    provable point per group goes straight to the event engine."""
    with _env(NAIVE_MPREDICT_ENV, "1"):
        naive, fast, executor = _ab_sweep(CFG, "daxpy", [96], M_VALUES,
                                          "baseline")
    assert fast == naive
    assert executor.planned_points == 0
    assert executor.batch_fallback_points == len(M_VALUES)
    assert executor.simulated_points == len(M_VALUES)
    assert executor.mmodels_fitted == 0
    assert executor.prefixes_predicted == 0


def test_unprovable_strategy_type_falls_back():
    """A dispatch subclass may override timing arbitrarily, so the
    planner must refuse the whole sweep on exact-type grounds."""

    class TracingDispatch(SequentialStoreDispatch):
        key = "tracing_store"

    name = "batchtest_traced"
    register_variant(name, TracingDispatch(), AMO_POLL)
    try:
        assert batch.resolve_spec(CFG, name) is None
        naive, fast, executor = _ab_sweep(CFG, "daxpy", [64, 128], [1, 2],
                                          name)
        assert fast == naive
        assert executor.planned_points == 0
        assert executor.batch_fallback_points == 4
    finally:
        _VARIANT_REGISTRY.pop(name, None)


def test_zero_byte_slices_are_refused_per_point():
    """Zero-byte DMA slices skip the channel reservation entirely, so
    the chain algebra refuses such points; the sweep must still match
    the reference through the event engine."""

    class ComputeOnlyKernel(Kernel):
        name = "batchtest_computeonly"
        input_names = ("x",)
        output_names = ()
        timing = get_kernel("daxpy").timing

        def slice_bytes_in(self, lo, hi, n):
            return 8 * (hi - lo)

        def slice_bytes_out(self, lo, hi, n):
            return 0

        def compute_slice(self, n, scalars, inputs, work):
            return {}

    register_kernel(ComputeOnlyKernel())
    try:
        kernel = get_kernel(ComputeOnlyKernel.name)
        assert not batch.point_provable(CFG, kernel, 64, 2, {})
        naive, fast, executor = _ab_sweep(
            CFG, ComputeOnlyKernel.name, [64, 128], [1, 2], "baseline")
        assert fast == naive
        assert executor.planned_points == 0
        assert executor.batch_fallback_points == 4
    finally:
        _KERNEL_REGISTRY.pop(ComputeOnlyKernel.name, None)


# ----------------------------------------------------------------------
# The residual check
# ----------------------------------------------------------------------
def test_residual_check_accepts_measured_and_rejects_drift():
    """The prediction at the calibration N must reproduce the measured
    trace exactly, and any tampering must be caught — this is the
    guard that keeps algebra drift from ever reaching results."""
    import dataclasses

    from repro.core.sweep import SweepPoint

    n, m = 96, 4
    system = ManticoreSystem(CFG)
    result = offload(system, "daxpy", n, m)
    measured = SweepPoint(
        kernel_name="daxpy", n=n, num_clusters=m, variant=result.variant,
        runtime_cycles=result.runtime_cycles,
        phases=result.trace.phase_summary())

    spec = batch.resolve_spec(CFG, "auto")
    assert spec is not None
    prefix = batch.extract_prefix(CFG, result.trace, m)
    assert prefix is not None
    prediction = batch.predict_point(CFG, get_kernel("daxpy"), spec,
                                     prefix, n, m)
    assert prediction is not None
    assert batch.matches_trace(prediction, result.trace, measured)

    drifted = dataclasses.replace(prediction,
                                  end_cycle=prediction.end_cycle + 1)
    assert not batch.matches_trace(drifted, result.trace, measured)
    shifted = dataclasses.replace(
        prediction,
        completion_signalled=tuple(
            c + 1 for c in prediction.completion_signalled))
    assert not batch.matches_trace(shifted, result.trace, measured)
