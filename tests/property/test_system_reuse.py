"""Property tests: SoC reuse and poll virtualization are bit-identical.

Two timing invariants back the PR-2 throughput work:

1. A pooled/reset :class:`~repro.soc.manticore.ManticoreSystem` measures
   exactly what a freshly constructed one does (``reset()`` restores
   boot state).
2. The virtualized host poll loop (watchpoint fast-forward) charges the
   same cycles, retired operations, loads, and NoC traffic as the naive
   load-by-load loop it replaces.

Both are verified here on randomly sampled grid points and across all
three program shapes (plain, overlapped, concurrent).
"""

import contextlib
import os

import hypothesis
import hypothesis.strategies as st
import pytest

from repro.core.concurrent import ConcurrentJob, offload_concurrent
from repro.core.offload import offload
from repro.core.overlap import offload_overlapped
from repro.runtime.protocol import NAIVE_POLL_ENV
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.soc.pool import FRESH_SYSTEMS_ENV, SystemPool

SETTINGS = hypothesis.settings(
    max_examples=5, deadline=None,
    suppress_health_check=[
        hypothesis.HealthCheck.too_slow,
        # The autouse gate-clearing fixture is env-only and idempotent
        # across examples, so function scope is safe.
        hypothesis.HealthCheck.function_scoped_fixture,
    ])

N_VALUES = [24, 32, 48, 64, 96]
M_VALUES = [1, 2, 4]
VARIANTS = ["baseline", "extended"]


@pytest.fixture(autouse=True)
def _fast_paths_on(monkeypatch):
    """Pin pooling and the virtualized poll loop on regardless of
    ambient gates: the CI ``ab-gates`` matrix runs the whole suite with
    each ``REPRO_*`` gate set, and these tests enable the reference
    paths *explicitly* where they A/B them."""
    for name in (NAIVE_POLL_ENV, FRESH_SYSTEMS_ENV):
        monkeypatch.delenv(name, raising=False)


@contextlib.contextmanager
def _env(name, value):
    saved = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if saved is None:
            del os.environ[name]
        else:
            os.environ[name] = saved


def _fingerprint(system, runtime_cycles):
    """Everything an observer could measure about one program run."""
    noc = system.noc
    return {
        "runtime": runtime_cycles,
        "retired": system.host.retired_operations,
        "loads": system.host.lsu.loads_issued,
        "stores": system.host.lsu.stores_issued,
        "host_requests": noc.host_port.requests,
        "host_busy": noc.host_port.busy_cycles,
        "amo_requests": noc.amo_port.requests,
        "transactions": sorted(
            (txn.kind.name, txn.issued_at, txn.source, txn.addresses)
            for txn in noc.transactions),
        "end": system.sim.now,
    }


# ----------------------------------------------------------------------
# Invariant 1: reset()/pool reuse is bit-identical to fresh construction
# ----------------------------------------------------------------------
@SETTINGS
@hypothesis.given(n=st.sampled_from(N_VALUES), m=st.sampled_from(M_VALUES),
                  variant=st.sampled_from(VARIANTS))
def test_reset_then_measure_matches_fresh(n, m, variant):
    config = SoCConfig.extended(num_clusters=4)

    fresh = ManticoreSystem(config)
    result_fresh = offload(fresh, "daxpy", n, m, variant=variant)
    print_fresh = _fingerprint(fresh, result_fresh.runtime_cycles)

    pool = SystemPool()
    # First lease constructs; run a *different* point on it to dirty the
    # instance, then lease again (reset path) for the measured point.
    with pool.lease(config) as system:
        offload(system, "daxpy", 2 * n, 1, variant=variant)
    with pool.lease(config) as system:
        result_pooled = offload(system, "daxpy", n, m, variant=variant)
        print_pooled = _fingerprint(system, result_pooled.runtime_cycles)

    assert pool.hits == 1 and pool.builds == 1
    assert print_pooled == print_fresh
    assert result_pooled.trace.phase_summary() == \
        result_fresh.trace.phase_summary()


@SETTINGS
@hypothesis.given(points=st.lists(
    st.tuples(st.sampled_from(N_VALUES), st.sampled_from(M_VALUES)),
    min_size=2, max_size=4))
def test_repeated_reuse_is_stable(points):
    """One instance, many resets: every point matches its fresh twin."""
    config = SoCConfig.baseline(num_clusters=4)
    pool = SystemPool()
    for n, m in points:
        with pool.lease(config) as system:
            reused = offload(system, "daxpy", n, m)
        fresh_sys = ManticoreSystem(config)
        fresh = offload(fresh_sys, "daxpy", n, m)
        assert reused.runtime_cycles == fresh.runtime_cycles, (n, m)
    assert pool.builds == 1
    assert pool.hits == len(points) - 1


# ----------------------------------------------------------------------
# Invariant 2: virtualized polling is bit-identical to the naive loop
# ----------------------------------------------------------------------
def _naive_and_fast(run):
    """Run ``run(system) -> runtime`` twice, naive poll then fast path."""
    config = SoCConfig.baseline(num_clusters=4)
    with _env(NAIVE_POLL_ENV, "1"):
        system = ManticoreSystem(config)
        naive = _fingerprint(system, run(system))
    system = ManticoreSystem(config)
    fast = _fingerprint(system, run(system))
    return naive, fast


@SETTINGS
@hypothesis.given(n=st.sampled_from(N_VALUES), m=st.sampled_from(M_VALUES))
def test_fast_poll_matches_naive_offload(n, m):
    naive, fast = _naive_and_fast(
        lambda system: offload(system, "daxpy", n, m).runtime_cycles)
    assert fast == naive


@SETTINGS
@hypothesis.given(accel_n=st.sampled_from(N_VALUES),
                  host_n=st.sampled_from([16, 32, 256]))
def test_fast_poll_matches_naive_overlapped(accel_n, host_n):
    naive, fast = _naive_and_fast(
        lambda system: offload_overlapped(
            system, "daxpy", accel_n, 2, "daxpy", host_n).total_cycles)
    assert fast == naive


@SETTINGS
@hypothesis.given(n_a=st.sampled_from(N_VALUES), n_b=st.sampled_from(N_VALUES))
def test_fast_poll_matches_naive_concurrent(n_a, n_b):
    jobs = (ConcurrentJob(kernel_name="daxpy", n=n_a, num_clusters=2),
            ConcurrentJob(kernel_name="daxpy", n=n_b, num_clusters=2))
    naive, fast = _naive_and_fast(
        lambda system: offload_concurrent(system, jobs).makespan_cycles)
    assert fast == naive


def test_fast_poll_skips_simulated_poll_events():
    """The fast path must actually fast-forward, not just agree.

    On a long run the naive loop resumes the host once per poll
    iteration; the virtualized path resumes it O(1) times.  Compare
    simulator event sequence numbers as a proxy for scheduled events.
    """
    config = SoCConfig.baseline(num_clusters=4)
    with _env(NAIVE_POLL_ENV, "1"):
        system = ManticoreSystem(config)
        naive = offload(system, "daxpy", 8192, 1)
        naive_events = system.sim._sequence
    system = ManticoreSystem(config)
    fast = offload(system, "daxpy", 8192, 1)
    fast_events = system.sim._sequence
    assert fast.runtime_cycles == naive.runtime_cycles
    assert fast_events < naive_events
