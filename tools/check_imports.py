#!/usr/bin/env python3
"""Import-layering lint for the ``repro`` package (pure stdlib).

The reproduction is layered; each module may import only from layers
strictly below its own (or from its own layer).  The ladder, bottom up:

====== ==========================================================
layer  modules
====== ==========================================================
0      ``errors``, ``flags``
1      ``sim``
2      ``mem``, ``noc``
3      ``kernels``, ``abi``
4      ``cluster``, ``host``, ``soc``
5      ``runtime``
6      ``core``, ``energy``, ``workload``, ``traffic``
7      ``analysis``, ``experiments``, ``cli``, ``__main__``
====== ==========================================================

Two rules are enforced over *module-level* imports (function-level
imports are deliberate lazy escapes — e.g. ``soc.config`` reads the
strategy registry lazily to keep layer 4 below layer 5):

1. **No upward imports.**  A module in layer N must not import a
   ``repro`` module in a layer above N.  Sideways (same layer) is
   allowed — subpackages are cohesive.
2. **No cross-module private imports.**  ``from repro.x import _name``
   reaching into a *different* top-level module is forbidden; private
   names are module-internal.
3. **Per-submodule allowlists.**  A few submodules sit at the *bottom*
   of their layer by contract (``SUBMODULE_RULES``): ``repro.sim.diag``
   is imported by the kernel itself, so it may only depend on the
   leaf pieces listed there — anything else recreates the import cycle
   the ordering in ``repro/sim/__init__.py`` exists to avoid.

Exit status 0 when clean; 1 with one line per violation otherwise.

Usage::

    python tools/check_imports.py [src/repro]
"""

from __future__ import annotations

import ast
import pathlib
import sys

LAYERS = {
    "errors": 0, "flags": 0,
    "sim": 1,
    "mem": 2, "noc": 2,
    "kernels": 3, "abi": 3,
    "cluster": 4, "host": 4, "soc": 4,
    "runtime": 5,
    "core": 6, "energy": 6, "workload": 6, "traffic": 6,
    "analysis": 7, "experiments": 7, "cli": 7, "__main__": 7,
}

#: Submodules pinned below their siblings: module -> allowed repro
#: imports (exact module names).  ``repro.sim.diag`` is imported from
#: ``repro.sim.kernel`` at module load, so it must never import the
#: kernel (or anything that does) at module level.
SUBMODULE_RULES = {
    "repro.sim.diag": {
        "repro.errors",
        "repro.flags",
        "repro.sim.event",
        "repro.sim.process",
        "repro.sim.record",
    },
    # Tile classes sit at the bottom of the soc layer: cluster, soc and
    # core all build on them, so the module must stay leaf-like — a
    # dependency on e.g. soc.config here would recreate the homogeneity
    # coupling the tile abstraction exists to remove.
    "repro.soc.tiles": {
        "repro.errors",
        "repro.kernels.base",
    },
}


def top_module(qualname: str) -> str | None:
    """``repro.core.offload`` -> ``core``; non-repro names -> None."""
    parts = qualname.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def module_name(path: pathlib.Path, root: pathlib.Path) -> str:
    rel = path.relative_to(root.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def check_file(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    name = module_name(path, root)
    own_top = top_module(name)
    if own_top is None:
        # repro/__init__.py is the public facade; it may import anything.
        return []
    own_layer = LAYERS.get(own_top)
    if own_layer is None:
        return [f"{path}: module {own_top!r} is not in the layer table; "
                "add it to tools/check_imports.py"]
    violations = []
    tree = ast.parse(path.read_text(), filename=str(path))
    # Module-level statements only: lazy function-level imports are the
    # sanctioned escape hatch for cycles (documented at the import site).
    for node in ast.iter_child_nodes(tree):
        targets = []   # (imported module qualname, [imported names])
        if isinstance(node, ast.Import):
            targets = [(alias.name, []) for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            targets = [(node.module or "",
                        [alias.name for alias in node.names])]
        for qualname, names in targets:
            dep_top = top_module(qualname)
            if dep_top is None:
                continue
            allowed = SUBMODULE_RULES.get(name)
            if allowed is not None and qualname not in allowed:
                violations.append(
                    f"{path}:{node.lineno}: {name} may only import "
                    f"{', '.join(sorted(allowed))} from repro "
                    f"(imports {qualname}) — see SUBMODULE_RULES")
            dep_layer = LAYERS.get(dep_top)
            if dep_layer is None:
                violations.append(
                    f"{path}:{node.lineno}: imports {qualname} whose "
                    f"module {dep_top!r} is not in the layer table")
                continue
            if dep_layer > own_layer:
                violations.append(
                    f"{path}:{node.lineno}: {name} (layer {own_layer}, "
                    f"{own_top}) imports {qualname} (layer {dep_layer}, "
                    f"{dep_top}) — upward dependency")
            if dep_top != own_top:
                for imported in names:
                    if imported.startswith("_"):
                        violations.append(
                            f"{path}:{node.lineno}: {name} imports "
                            f"private name {imported!r} from {qualname} "
                            "— private names are module-internal")
    return violations


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent / "src" / "repro")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    violations = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path, root))
    for line in violations:
        print(line)
    if violations:
        print(f"\n{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print(f"import layering clean ({sum(1 for _ in root.rglob('*.py'))} "
          "files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
