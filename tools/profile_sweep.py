#!/usr/bin/env python3
"""Profile a sweep and break down per-event interpreter cost.

Runs one sweep grid under :mod:`cProfile` — once through the reference
event engine (``REPRO_NAIVE_BATCH=1``) and once through the batched
planner — and reports where the interpreter time goes:

* points/sec and process-body resume counts for each side (a *resume*
  is one :meth:`repro.sim.process.Process._resume` call, i.e. one
  generator re-entry by the event kernel — the unit the batch engine
  exists to avoid);
* microseconds of inclusive interpreter time per resume;
* the top functions by total (self) time, per side.

With ``--markdown PATH`` the same breakdown is written as a Markdown
document (``docs/batching_profile.md`` in this repo was generated that
way; regenerate it after engine changes with::

    python tools/profile_sweep.py --markdown docs/batching_profile.md

). Pure stdlib on top of the repro package; importable for its
:func:`profile_run` helper.
"""

import argparse
import cProfile
import io
import os
import pathlib
import pstats
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import flags  # noqa: E402
from repro.core.executor import SweepExecutor  # noqa: E402
from repro.soc.config import SoCConfig  # noqa: E402

#: (path suffix, function name) pairs whose inclusive time anchors the
#: per-resume cost figure.
RESUME_FUNC = ("repro/sim/process.py", "_resume")
RUN_FUNC = ("repro/sim/kernel.py", "run")


def profile_run(config, kernel, n_values, m_values, variant, naive):
    """Run one sweep under cProfile; returns ``(run_stats, pstats.Stats)``.

    ``naive=True`` pins ``REPRO_NAIVE_BATCH`` for the duration so the
    whole grid goes through the event engine; otherwise the gate is
    cleared and the batch planner handles what it can prove.
    """
    saved = os.environ.get(flags.NAIVE_BATCH_ENV)
    if naive:
        os.environ[flags.NAIVE_BATCH_ENV] = "1"
    else:
        os.environ.pop(flags.NAIVE_BATCH_ENV, None)
    executor = SweepExecutor()
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        executor.run(config, kernel, n_values, m_values, variant=variant)
        profiler.disable()
    finally:
        if saved is None:
            os.environ.pop(flags.NAIVE_BATCH_ENV, None)
        else:
            os.environ[flags.NAIVE_BATCH_ENV] = saved
    stats = pstats.Stats(profiler)
    stats.calc_callees()
    return executor.last_run_stats, stats


def _find(stats, path_suffix, func_name):
    """Locate ``(call_count, inclusive_seconds)`` for one function."""
    for (path, _lineno, name), row in stats.stats.items():
        if name == func_name and path.endswith(path_suffix):
            cc, _nc, _tt, ct, _callers = row
            return cc, ct
    return 0, 0.0


def _top_functions(stats, limit):
    """The ``limit`` hottest rows by self time, as aligned text lines."""
    rows = sorted(
        ((tt, ct, nc, path, lineno, name)
         for (path, lineno, name), (cc, nc, tt, ct, _callers)
         in stats.stats.items()),
        reverse=True)[:limit]
    lines = []
    for tt, ct, nc, path, lineno, name in rows:
        where = f"{pathlib.Path(path).name}:{lineno}({name})"
        lines.append(f"{tt:8.3f}s self {ct:8.3f}s incl {nc:>9} calls  "
                     f"{where}")
    return lines


def summarize(label, run_stats, stats, top):
    """Build the per-side breakdown as a list of text lines."""
    resumes = run_stats.get("sim_resumes", 0)
    resume_calls, resume_seconds = _find(stats, *RESUME_FUNC)
    run_calls, run_seconds = _find(stats, *RUN_FUNC)
    total = stats.total_tt
    lines = [
        f"== {label} ==",
        f"points               {run_stats['points']}",
        f"points/sec           {run_stats['points_per_second']:.1f} "
        "(under profiler overhead; see BENCH_sweep.json for clean rates)",
        f"simulated / planned  {run_stats['simulated_points']} / "
        f"{run_stats['planned_points']}",
        f"event resumes        {resumes}",
        f"event kernel runs    {run_calls} calls, "
        f"{run_seconds:.3f}s inclusive",
        f"resume interpreter   {resume_calls} calls, "
        f"{resume_seconds:.3f}s inclusive",
    ]
    if resume_calls:
        lines.append(
            f"cost per resume      "
            f"{resume_seconds / resume_calls * 1e6:.1f} us inclusive")
        lines.append(
            f"resume share         "
            f"{resume_seconds / total * 100.0:.1f}% of "
            f"{total:.3f}s profiled")
    else:
        lines.append("cost per resume      n/a (no event-engine resumes)")
    lines.append("")
    lines.append(f"top {top} functions by self time:")
    lines.extend("  " + row for row in _top_functions(stats, top))
    return lines


def _markdown(args, sides):
    """Render the breakdown document for ``--markdown``."""
    grid = (f"kernel `{args.kernel}`, N {args.n}, M {args.m}, "
            f"variant `{args.variant}`, {args.clusters} clusters")
    out = io.StringIO()
    out.write("# Sweep profile breakdown\n\n")
    out.write(f"Generated by `python tools/profile_sweep.py` on {grid}.\n"
              "Throughput figures here carry cProfile overhead; the\n"
              "committed benchmark snapshots (`BENCH_sweep.json`) are the\n"
              "clean numbers.  Regenerate after engine changes with\n"
              "`python tools/profile_sweep.py --markdown "
              "docs/batching_profile.md`.\n")
    for label, lines, _run_stats in sides:
        out.write(f"\n## {label}\n\n```text\n")
        out.write("\n".join(lines[1:]))
        out.write("\n```\n")
    naive_stats, fast_stats = (dict(s) for s in
                               (sides[0][2], sides[1][2]))
    speedup = (fast_stats["points_per_second"]
               / naive_stats["points_per_second"]
               if naive_stats["points_per_second"] else float("inf"))
    resume_cut = (1.0 - (fast_stats.get("sim_resumes", 0)
                         / naive_stats["sim_resumes"])
                  if naive_stats.get("sim_resumes") else 0.0)
    out.write(
        "\n## Reading the numbers\n\n"
        f"Under the profiler the batched path ran {speedup:.2f}x the\n"
        f"reference and eliminated {resume_cut:.0%} of event-engine\n"
        "resumes.  Each resume is one generator re-entry in\n"
        "`repro/sim/process.py:_resume`; its inclusive share above is\n"
        "the interpreter cost the `BatchPlanner` converts into a few\n"
        "NumPy array expressions per (variant, M) group — one\n"
        "calibration simulation still pays full price, every other N\n"
        "in the group is predicted closed-form and residual-checked\n"
        "against the calibration trace (see `docs/architecture.md`,\n"
        "section 12).\n")
    return out.getvalue()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel", default="daxpy",
                        help="registered kernel to sweep (default: daxpy)")
    parser.add_argument("--n", type=int, nargs="+",
                        default=[1024, 4096, 8192],
                        help="problem sizes (default: 1024 4096 8192)")
    parser.add_argument("--m", type=int, nargs="+",
                        default=list(range(1, 17)),
                        help="offload widths (default: 1..16)")
    parser.add_argument("--clusters", type=int, default=16,
                        help="fabric size (default: 16)")
    parser.add_argument("--variant", default="extended",
                        help="protocol variant (default: extended)")
    parser.add_argument("--top", type=int, default=12,
                        help="hot functions to list per side (default: 12)")
    parser.add_argument("--markdown", type=pathlib.Path, default=None,
                        help="also write the breakdown as Markdown")
    args = parser.parse_args(argv)
    bad = [m for m in args.m if m < 1 or m > args.clusters]
    if bad:
        parser.error(f"--m values out of 1..{args.clusters}: {bad}")

    config = SoCConfig.extended(num_clusters=args.clusters)
    sides = []
    for label, naive in (("reference event engine (REPRO_NAIVE_BATCH=1)",
                          True),
                         ("batched planner (default path)", False)):
        run_stats, stats = profile_run(
            config, args.kernel, args.n, args.m, args.variant, naive)
        lines = summarize(label, run_stats, stats, args.top)
        print("\n".join(lines))
        print()
        sides.append((label, lines, run_stats))

    if args.markdown is not None:
        args.markdown.write_text(_markdown(args, sides))
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
