#!/usr/bin/env python3
"""Benchmark smoke gate: fail on a points-per-second regression.

Compares a freshly generated ``pytest-benchmark`` JSON file (the
``--benchmark-json`` output of ``benchmarks/bench_sweep_throughput.py``)
against the committed reference snapshot ``BENCH_sweep.json`` and exits
non-zero when any shared throughput figure regresses by more than the
tolerance (default 10%).

Only ``extra_info`` keys ending in ``points_per_sec`` are compared —
those are the numbers the benchmark module itself derives from
best-of-N rounds precisely so a loaded runner cannot flake them the way
raw wall-clock times do.  Benchmarks present on only one side are
reported but never fail the gate (snapshots regenerate on a different
cadence than CI) — except benchmarks named with ``--require``, which
must appear in the *current* report: CI passes the A/B benchmarks it
depends on, so a renamed or silently skipped benchmark fails loudly
instead of degrading the gate to a no-op.

Usage::

    pytest benchmarks/bench_sweep_throughput.py \
        --benchmark-json=/tmp/bench.json -q
    python tools/check_bench.py /tmp/bench.json \
        [--reference BENCH_sweep.json] [--tolerance 0.10]

Pure stdlib; importable for its :func:`compare` helper (unit-tested in
``tests/unit/test_check_bench.py``).
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_REFERENCE = REPO_ROOT / "BENCH_sweep.json"
THROUGHPUT_SUFFIX = "points_per_sec"


def _throughputs(report):
    """Map ``benchmark name -> {extra_info key -> points/sec}``."""
    out = {}
    for bench in report.get("benchmarks", []):
        figures = {
            key: float(value)
            for key, value in bench.get("extra_info", {}).items()
            if key.endswith(THROUGHPUT_SUFFIX)
        }
        if figures:
            out[bench["name"]] = figures
    return out


def compare(reference, current, tolerance):
    """Compare two benchmark reports; returns (failures, lines).

    ``failures`` lists human-readable descriptions of figures that
    regressed past ``tolerance``; ``lines`` is the full comparison log
    (one entry per shared figure plus notes for one-sided benchmarks).
    """
    ref = _throughputs(reference)
    cur = _throughputs(current)
    failures = []
    lines = []
    for name in sorted(set(ref) | set(cur)):
        if name not in cur:
            lines.append(f"  {name}: only in reference (skipped)")
            continue
        if name not in ref:
            lines.append(f"  {name}: new benchmark (no reference)")
            continue
        for key in sorted(set(ref[name]) | set(cur[name])):
            if key not in ref[name] or key not in cur[name]:
                side = "reference" if key in ref[name] else "current"
                lines.append(f"  {name}.{key}: only in {side} (skipped)")
                continue
            before, after = ref[name][key], cur[name][key]
            floor = before * (1.0 - tolerance)
            ratio = after / before if before else float("inf")
            verdict = "ok" if after >= floor else "REGRESSION"
            lines.append(
                f"  {name}.{key}: {before:.1f} -> {after:.1f} "
                f"({ratio:.2f}x, floor {floor:.1f}) {verdict}")
            if after < floor:
                failures.append(
                    f"{name}.{key} regressed: {after:.1f} points/sec vs "
                    f"reference {before:.1f} (> {tolerance:.0%} below)")
    if not lines:
        lines.append("  (no comparable throughput figures)")
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=pathlib.Path,
                        help="freshly generated --benchmark-json file")
    parser.add_argument("--reference", type=pathlib.Path,
                        default=DEFAULT_REFERENCE,
                        help="committed snapshot to compare against "
                             "(default: BENCH_sweep.json)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown before failing "
                             "(default: 0.10)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="benchmark name that must appear (with a "
                             "throughput figure) in the current report; "
                             "repeatable")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")

    with args.reference.open() as handle:
        reference = json.load(handle)
    with args.current.open() as handle:
        current = json.load(handle)

    failures, lines = compare(reference, current, args.tolerance)
    present = _throughputs(current)
    for name in args.require:
        if name not in present:
            failures.append(
                f"{name} required but missing from {args.current} "
                "(renamed or skipped benchmark?)")
    print(f"check_bench: {args.current} vs {args.reference} "
          f"(tolerance {args.tolerance:.0%})")
    print("\n".join(lines))
    if failures:
        print(f"\n{len(failures)} benchmark gate failure(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("check_bench: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
