"""E2 — Fig. 1 (right): speedup of the extensions across (N, M).

Regenerates the paper's right plot: speedup of the extended design over
the baseline for problem sizes from 1024 upward and M in {1..32}.
Asserts the two claims the paper draws from it: speedup always above
one, and decreasing with the problem size at a fixed cluster count.
"""

from repro import experiments


def test_fig1_right(bench_once):
    result = bench_once(experiments.fig1_right)
    print()
    print(result.render())

    assert result.min_speedup > 1.0

    # Decreasing with N at fixed M (asserted above the polling jitter).
    for m in (8, 16, 32):
        series = [result.speedups[(m, n)] for n in result.n_values()]
        assert series == sorted(series, reverse=True)

    # Increasing with M at fixed N.
    for n in result.n_values():
        series = [result.speedups[(m, n)] for m in result.m_values()]
        assert series == sorted(series)
