"""E8 — offload energy, baseline vs extended (the paper's other metric).

The paper's overheads "add up to the runtime *and energy consumption*
of the job execution"; this bench quantifies the energy side with the
simulator's activity counters under a placeholder power budget: the
extended design saves energy on top of time because the host sleeps in
WFI instead of polling and dispatch traffic shrinks.
"""

from repro import experiments


def test_energy_comparison(bench_once):
    result = bench_once(experiments.energy_experiment)
    print()
    print(result.render())

    for m in result.extended_pj:
        # The extensions never cost energy...
        assert result.extended_pj[m] < result.baseline_pj[m]
        # ...and the energy saving exceeds the runtime saving (the
        # sleeping host compounds with the shorter runtime).
        energy_saving = result.baseline_pj[m] / result.extended_pj[m]
        runtime_saving = (result.baseline_cycles[m]
                          / result.extended_cycles[m])
        assert energy_saving > runtime_saving

    # Energy- and runtime-optimal widths diverge: watts buy latency.
    assert result.energy_optimal_m() < result.runtime_optimal_m()
