"""A5 — double-buffered vs phased device execution.

The paper's protocol is phased (stage, compute, write back), which is
what makes Eq. 1 additive.  The classic double-buffering idiom overlaps
the phases; this bench quantifies the win across offload widths and
shows the additive model family stops describing the overlapped
protocol — a structural, not numeric, limit of Eq. 1.
"""

from repro import experiments


def test_ablation_double_buffer(bench_once):
    result = bench_once(experiments.ablation_double_buffer)
    print()
    print(result.render())

    # Overlap can only help (up to chunk-setup noise)...
    for m in result.phased:
        assert result.double_buffered[m] <= result.phased[m] + 64
    # ...helps most where the memory term dominates (narrow offloads),
    speedup_1 = result.phased[1] / result.double_buffered[1]
    speedup_32 = result.phased[32] / result.double_buffered[32]
    assert speedup_1 > 1.4
    assert speedup_1 > speedup_32
    # ...and breaks the additive Eq.-1 structure: the phased model's
    # error explodes from <1 % to tens of percent.
    assert result.dbuf_mape_vs_phased_model > 5.0
