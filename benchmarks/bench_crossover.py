"""E7 — the offload crossover: when does offloading start to pay?

Measures host execution and the widest offload for sizes from 16 to
1024 and reports the smallest N where the accelerator wins per kernel —
quantifying the fine-grained-task motivation of the paper's
introduction with both sides measured on the same simulator.
"""

from repro import experiments


def test_offload_crossover(bench_once):
    result = bench_once(experiments.crossover_experiment)
    print()
    print(result.render())

    for row in result.rows:
        # Every kernel crosses somewhere inside the tested range...
        assert row.crossover_n is not None, row.kernel
        # ...and the crossover sits in fine-grained territory: the
        # constant offload overhead (~370 cycles) is what sets it.
        assert 32 <= row.crossover_n <= 512, row

    # Below the crossover the host wins; above, the accelerator wins
    # and keeps winning.
    for kernel, curve in result.curves.items():
        crossed = False
        for n in sorted(curve):
            host, accel = curve[n]
            if crossed:
                assert accel < host, (kernel, n)
            crossed = crossed or accel < host
