"""A6 — strategies for jobs exceeding the staged working set.

A 65536-element DAXPY cannot be phased-offloaded below M=8 (the slice
would overflow the TCDM).  Two software strategies unlock it — tiling
(sequential offloads, each paying the full constant overhead) and the
double-buffered device protocol (one offload, chunked pipeline) — and
their gap is pure offload overhead plus lost overlap, i.e. exactly
what the paper is about, at job granularity.
"""

from repro.analysis.tables import Table
from repro.core.offload import offload_daxpy
from repro.core.tiling import offload_tiled
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


N = 65536


def run_comparison():
    rows = {}
    for m in (1, 2, 4):
        tiled = offload_tiled(ManticoreSystem(SoCConfig.extended()),
                              "daxpy", N, m)
        dbuf = offload_daxpy(ManticoreSystem(SoCConfig.extended()),
                             n=N, num_clusters=m,
                             exec_mode="double_buffered")
        rows[m] = (tiled.total_cycles, tiled.num_tiles,
                   dbuf.runtime_cycles)
    return rows


def test_tiling_vs_double_buffering(bench_once):
    rows = bench_once(run_comparison)

    table = Table(["M", "tiled [cycles]", "tiles", "double-buffered",
                   "dbuf speedup"],
                  title=f"A6: TCDM-exceeding DAXPY n={N}")
    for m, (tiled, tiles, dbuf) in sorted(rows.items()):
        table.add_row([m, tiled, tiles, dbuf, tiled / dbuf])
    print()
    print(table.render())

    for m, (tiled, tiles, dbuf) in rows.items():
        # Both strategies work; double buffering wins clearly because
        # it pays the offload overhead once and overlaps DMA/compute.
        assert tiles > 1
        assert dbuf < tiled
        assert tiled / dbuf > 1.3
