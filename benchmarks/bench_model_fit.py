"""E4 — Eq. 1: the analytic runtime model, fitted from measurements.

The paper derives t(M,N) = 367 + N/4 + 2.6N/(8M) by inspecting the RTL
and the compiled binary; we recover the same structure by least-squares
fitting the measured sweep, and compare coefficients side by side.
"""

import pytest

from repro import experiments


def test_eq1_model_fit(bench_once):
    result = bench_once(experiments.fit_model)
    print()
    print(result.render())

    model = result.model
    paper = result.paper_model
    # Constant overhead and memory coefficient land on the paper's.
    assert model.t0 == pytest.approx(paper.t0, abs=5)
    assert model.mem_coeff == pytest.approx(paper.mem_coeff, abs=0.005)
    # Compute coefficient includes our visible write-back (DESIGN.md §2).
    assert model.compute_coeff == pytest.approx(0.45, abs=0.01)
    # The fit explains essentially all variance.
    assert result.report.r_squared > 0.9999


def test_eq1_baseline_needs_dispatch_term(bench_once):
    """Fitting the baseline with the dispatch column recovers the
    ~10-cycle-per-cluster doorbell cost that Eq. 1 (extended) lacks."""
    result = bench_once(experiments.fit_model, variant_config="baseline")
    print()
    print(result.report.summary())
    assert result.model.dispatch_coeff == pytest.approx(10.0, abs=2.0)
