"""E5 — Eq. 2: per-N MAPE of the runtime model (< 1 % everywhere).

Regenerates the paper's validation: for each N in {256, 512, 768,
1024}, the mean absolute percentage error of the model over M in
{1, 2, 4, 8, 16, 32}.
"""

from repro import experiments


def test_eq2_mape_below_one_percent(bench_once):
    result = bench_once(experiments.mape_experiment)
    print()
    print(result.render())

    assert set(result.per_n) == {256, 512, 768, 1024}
    for n, value in result.per_n.items():
        assert value < 1.0, f"MAPE({n}) = {value:.3f} %"
    assert result.worst < 1.0
