"""A3 — model generality: the Eq.-1 family fitted to every kernel.

The paper models DAXPY; this bench fits the same three-coefficient
family to every element-wise/reduction kernel in the library and
checks it stays tight (MAPE well under the paper's 1 % bound), showing
the model is a property of the offload machinery, not of DAXPY.
"""

from repro import experiments


def test_kernel_generality(bench_once):
    result = bench_once(experiments.kernel_generality)
    print()
    print(result.render())

    assert set(result.fits) == set(experiments.GENERALITY_KERNELS)
    for name, report in result.fits.items():
        assert report.mape_percent < 1.0, (name, report.mape_percent)
        assert report.r_squared > 0.999, (name, report.r_squared)

    # Traffic and rate differences must show up in the coefficients:
    # memcpy moves half of DAXPY's inbound bytes per element...
    daxpy = result.fits["daxpy"].model
    memcpy = result.fits["memcpy"].model
    assert memcpy.mem_coeff < daxpy.mem_coeff
    # ...and axpby's 3.0 cycles/element beats daxpy's 2.6 rate.
    axpby = result.fits["axpby"].model
    assert axpby.compute_coeff > daxpy.compute_coeff
