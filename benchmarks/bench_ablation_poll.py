"""A4 — poll-period sensitivity of the baseline's completion protocol.

The baseline host polls a shared flag; its completion latency grows
with the gap between polls, while the extended design's interrupt path
has no such knob.  This bench sweeps the poll gap.
"""

from repro import experiments


def test_ablation_poll(bench_once):
    result = bench_once(experiments.ablation_poll)
    print()
    print(result.render())

    gaps = sorted(result.runtimes)
    # Small gaps land within one poll period of each other (the poll
    # arrival grids are not nested, so tiny non-monotonicity is real
    # quantization, not error)...
    small = [result.runtimes[gap] for gap in gaps if gap <= 16]
    assert max(small) - min(small) <= 34  # one poll period at gap=16
    # ...but a huge gap costs real time vs the interrupt path,
    assert result.runtimes[gaps[-1]] > min(small) + 50
    # and even the tightest busy-loop cannot beat the interrupt.
    assert min(result.runtimes.values()) >= result.extended_runtime
