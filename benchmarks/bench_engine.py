"""Simulator-engine microbenchmarks (wall-clock cost of the substrate).

Not a paper artifact: these track the discrete-event kernel's own
throughput so simulator regressions are visible independently of the
experiments built on top.
"""

from repro.core.offload import offload_daxpy
from repro.sim import SerialResource, Simulator
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def test_event_queue_throughput(benchmark):
    """Schedule-and-run one hundred thousand chained events."""
    def run():
        sim = Simulator()

        def body():
            for _ in range(100_000):
                yield 1
            return sim.now

        proc = sim.spawn(body())
        sim.run()
        return proc.value

    assert benchmark(run) == 100_000


def test_zero_delay_event_throughput(benchmark):
    """Chain one hundred thousand zero-delay event waits.

    Event triggers and process kick-offs all schedule at delay 0, so
    this isolates the kernel's zero-delay FIFO fast path (the heap
    never sees these callbacks).
    """
    def run():
        sim = Simulator()

        def body():
            for _ in range(100_000):
                yield sim.timer(0)
            return sim.now

        proc = sim.spawn(body())
        sim.run()
        return proc.value

    assert benchmark(run) == 0


def test_resource_contention_throughput(benchmark):
    """Ten thousand requests through one FIFO resource."""
    def run():
        sim = Simulator()
        resource = SerialResource(sim, "bus")
        done = [resource.request(3) for _ in range(10_000)]
        sim.run(until=done[-1])
        return sim.now

    assert benchmark(run) == 30_000


def test_system_construction(benchmark):
    """Build a full 32-cluster SoC (done once per sweep point)."""
    system = benchmark(ManticoreSystem, SoCConfig.extended())
    assert len(system.clusters) == 32


def test_single_offload_wall_clock(benchmark):
    """One complete measured offload, end to end."""
    def run():
        system = ManticoreSystem(SoCConfig.extended())
        return offload_daxpy(system, n=1024, num_clusters=32).runtime_cycles

    assert benchmark(run) == 637
