"""E1 + E3 — Fig. 1 (left): DAXPY runtime vs cluster count, both designs.

Regenerates the paper's left plot series (runtime of a 1024-element
DAXPY for M in {1..32}, baseline vs extended) and asserts the headline
claims: interior baseline minimum, monotone extended curve, >300-cycle
gap and a max speedup in the 47.9 %-neighbourhood band.
"""

from repro import experiments


def test_fig1_left(bench_once):
    result = bench_once(experiments.fig1_left)
    print()
    print(result.render())

    # Extended: runtime strictly improves all the way to 32 clusters.
    curve = [result.extended[m] for m in sorted(result.extended)]
    assert curve == sorted(curve, reverse=True)

    # Baseline: interior optimum, overhead dominating beyond it.
    assert result.baseline_optimum_m in (4, 8)
    assert result.baseline[32] > result.baseline[result.baseline_optimum_m]

    # Headline numbers (paper: >300 cycles, 47.9 %).
    assert result.gap_at_max_m > 300
    assert 1.35 <= result.max_speedup <= 1.60
