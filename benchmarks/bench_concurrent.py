"""E10 — space sharing: concurrent jobs amortize the offload overhead.

Two equal DAXPY jobs run either back to back (each using the full
allocation) or concurrently on disjoint half-ranges with a single
cross-job completion barrier in the credit counter.  The hardware and
the aggregate work are identical; the schedule alone decides how many
constant offload overheads the application pays.
"""

from repro import experiments


def test_space_sharing(bench_once):
    result = bench_once(experiments.concurrency_experiment)
    print()
    print(result.render())

    for m, concurrent in result.concurrent_cycles.items():
        sequential = result.sequential_cycles[m]
        # Space sharing always wins on equal hardware...
        assert concurrent < sequential
        # ...by roughly one constant offload overhead (~250-450 cycles).
        assert 150 < sequential - concurrent < 600
