"""E6 — Eq. 3: minimum cluster count under a deadline, verified.

Regenerates the offload-decision table: for each (N, t_max) scenario,
the model-inverted M_min, the prediction, and a *simulated* check that
M_min meets the deadline while M_min - 1 misses it.
"""

from repro import experiments


def test_eq3_decision_table(bench_once):
    result = bench_once(experiments.decision_experiment)
    print()
    print(result.render())

    feasible = [row for row in result.rows if row.m_min is not None]
    infeasible = [row for row in result.rows if row.m_min is None]
    assert feasible, "expected solvable scenarios"
    assert infeasible, "expected at least one sub-floor deadline"
    for row in feasible:
        assert row.meets_deadline, row
        if row.tighter_fails is not None:
            assert row.tighter_fails, row
