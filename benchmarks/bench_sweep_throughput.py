"""Sweep-point throughput: the simulator fast-forward layers, A/B'd.

Not a paper artifact: this tracks how many grid points per second the
sweep machinery measures, with every throughput mechanism — bisect +
hit-cache routing, pooled SoC reuse with copy-on-write boot snapshots,
virtualized host polling, bulk channel timing, closed-form
barrier/compute-phase crossings, and the batch planner that times most
grid points as array arithmetic seeded from a handful of calibration
runs (the M axis itself predicted via affine prefix models) — toggled
on and off via the A/B environment gates.  The toggles exist precisely
because the mechanisms are required to be bit-identical in measured
cycles — this module asserts that identity on the full grid while
timing both sides.

Snapshot with::

    pytest benchmarks/bench_sweep_throughput.py \
        --benchmark-json=BENCH_sweep.json -q
"""

import contextlib
import gc
import os
import time

from repro.core.sweep import sweep
from repro.flags import (
    NAIVE_BARRIER_ENV,
    NAIVE_BATCH_ENV,
    NAIVE_CHANNEL_ENV,
    NAIVE_MPREDICT_ENV,
    NAIVE_SNAPSHOT_ENV,
)
from repro.mem.map import LINEAR_ROUTING_ENV
from repro.runtime.protocol import NAIVE_POLL_ENV
from repro.soc.config import SoCConfig
from repro.soc.pool import FRESH_SYSTEMS_ENV

#: The acceptance grid: both paper variants over three problem sizes
#: and every fabric width.  384 simulations per A/B pass (192 a side).
N_VALUES = [1024, 4096, 8192]
M_VALUES = list(range(1, 33))
VARIANTS = ["baseline", "extended"]

_ALL_GATES = (NAIVE_POLL_ENV, FRESH_SYSTEMS_ENV, LINEAR_ROUTING_ENV,
              NAIVE_CHANNEL_ENV, NAIVE_BARRIER_ENV, NAIVE_SNAPSHOT_ENV,
              NAIVE_BATCH_ENV, NAIVE_MPREDICT_ENV)


@contextlib.contextmanager
def _gates(enabled, names=_ALL_GATES):
    saved = {name: os.environ.get(name) for name in _ALL_GATES}
    for name in _ALL_GATES:
        if enabled and name in names:
            os.environ[name] = "1"
        else:
            os.environ.pop(name, None)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _run_grid(reuse):
    """Measure the full grid; returns the flat list of sweep points."""
    config = SoCConfig.extended(num_clusters=32)
    points = []
    for variant in VARIANTS:
        variant_config = config.for_variant(variant)
        result = sweep(variant_config, "daxpy", N_VALUES, M_VALUES,
                       variant=variant, reuse=reuse)
        points.extend(result.points)
    return points


def test_sweep_point_throughput(benchmark):
    """Points/second with every fast-forward mechanism active.

    Five rounds, best-round statistics: the grid does identical work
    every round, so the fastest round is the least-perturbed one and
    ``points_per_sec`` is computed from it (a single-round figure is
    dominated by scheduler noise and CPU-frequency warm-up, which made
    earlier snapshots of this entry swing by >20%).
    """
    with _gates(enabled=False):
        points = benchmark.pedantic(_run_grid, args=(True,),
                                    rounds=5, iterations=1)
    assert len(points) == len(N_VALUES) * len(M_VALUES) * len(VARIANTS)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        best = benchmark.stats.stats.min
        benchmark.extra_info["grid_points"] = len(points)
        benchmark.extra_info["points_per_sec"] = round(len(points) / best, 1)


def test_optimizations_are_bit_identical_and_faster(benchmark):
    """A/B the full grid: gates off vs on; identical cycles, >=2x goal.

    Interleaved min-of-N, the same methodology as the engine-bench A/B
    in PR 1: alternate naive/optimized passes so warm-up and allocator
    state cannot favour one side, then compare each side's best pass.
    The benchmark-timed body is one *unoptimized* pass (naive poll
    loop, fresh system per point, linear-scan routing); both sides'
    throughput and the speedup land in ``extra_info``.  The hard
    assertion is deliberately looser than the 2x acceptance figure so a
    loaded CI runner cannot flake it; the committed BENCH_sweep.json
    demonstrates the real ratio.
    """
    rounds = 5
    naive_times = []
    fast_times = []
    naive_points = fast_points = None
    for index in range(rounds):
        with _gates(enabled=True):
            gc.collect()
            start = time.perf_counter()
            if index == 0:
                naive_points = benchmark.pedantic(_run_grid, args=(False,),
                                                  rounds=1, iterations=1)
            else:
                naive_points = _run_grid(False)
            naive_times.append(time.perf_counter() - start)
        with _gates(enabled=False):
            gc.collect()
            start = time.perf_counter()
            fast_points = _run_grid(True)
            fast_times.append(time.perf_counter() - start)
        # The whole point: not one measured cycle may move.
        assert fast_points == naive_points

    speedup = min(naive_times) / min(fast_times)
    benchmark.extra_info["naive_points_per_sec"] = round(
        len(naive_points) / min(naive_times), 1)
    benchmark.extra_info["optimized_points_per_sec"] = round(
        len(fast_points) / min(fast_times), 1)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup > 1.4, (
        f"sweep optimizations only {speedup:.2f}x faster than the "
        "naive path; expected ~2x")


def test_batch_planner_is_bit_identical_and_faster(benchmark):
    """Isolate the batch planner: every other mechanism on, batching
    A/B'd.

    ``REPRO_NAIVE_BATCH`` alone is toggled, so both sides enjoy pooled
    systems, snapshot restores and bulk timing — the measured ratio is
    the planner's full contribution on the acceptance grid, affine
    M-axis prefix prediction included (a handful of anchor calibrations
    per variant, everything else timed closed-form).  Interleaved
    min-of-N as above; bit-identity of the full point stream is the
    hard gate, the speedup floor stays loose for loaded CI runners.
    """
    rounds = 5
    event_times = []
    batched_times = []
    event_points = batched_points = None
    for index in range(rounds):
        with _gates(enabled=True, names=(NAIVE_BATCH_ENV,)):
            gc.collect()
            start = time.perf_counter()
            if index == 0:
                event_points = benchmark.pedantic(_run_grid, args=(True,),
                                                  rounds=1, iterations=1)
            else:
                event_points = _run_grid(True)
            event_times.append(time.perf_counter() - start)
        with _gates(enabled=False):
            gc.collect()
            start = time.perf_counter()
            batched_points = _run_grid(True)
            batched_times.append(time.perf_counter() - start)
        assert batched_points == event_points

    speedup = min(event_times) / min(batched_times)
    benchmark.extra_info["event_points_per_sec"] = round(
        len(event_points) / min(event_times), 1)
    benchmark.extra_info["batched_points_per_sec"] = round(
        len(batched_points) / min(batched_times), 1)
    benchmark.extra_info["batch_speedup"] = round(speedup, 2)
    assert speedup > 1.3, (
        f"batch planner only {speedup:.2f}x faster than the event "
        "engine; expected ~2x")


def test_mpredict_layer_is_bit_identical_and_faster(benchmark):
    """Isolate the affine M-axis prediction layer (batch layer 3).

    ``REPRO_NAIVE_MPREDICT`` alone is toggled, so *both* sides run the
    batch planner with every other mechanism on — the measured ratio is
    what predicting dispatch prefixes as affine functions of M buys
    over PR 7's one-calibration-per-(variant, M) rule on the acceptance
    grid (64 calibration simulations a pass vs ~7: three anchors per
    variant plus multicast's off-domain M = 1 group).  No persistent
    store is involved (``sweep`` runs uncached here), so this is the
    cold-run figure.  Interleaved min-of-N; bit-identity of the full
    point stream is the hard gate, the speedup floor stays loose for
    loaded CI runners.
    """
    rounds = 5
    calibrated_times = []
    predicted_times = []
    calibrated_points = predicted_points = None
    for index in range(rounds):
        with _gates(enabled=True, names=(NAIVE_MPREDICT_ENV,)):
            gc.collect()
            start = time.perf_counter()
            if index == 0:
                calibrated_points = benchmark.pedantic(
                    _run_grid, args=(True,), rounds=1, iterations=1)
            else:
                calibrated_points = _run_grid(True)
            calibrated_times.append(time.perf_counter() - start)
        with _gates(enabled=False):
            gc.collect()
            start = time.perf_counter()
            predicted_points = _run_grid(True)
            predicted_times.append(time.perf_counter() - start)
        assert predicted_points == calibrated_points

    speedup = min(calibrated_times) / min(predicted_times)
    benchmark.extra_info["calibrated_points_per_sec"] = round(
        len(calibrated_points) / min(calibrated_times), 1)
    benchmark.extra_info["predicted_points_per_sec"] = round(
        len(predicted_points) / min(predicted_times), 1)
    benchmark.extra_info["mpredict_speedup"] = round(speedup, 2)
    assert speedup > 1.1, (
        f"M-axis prefix prediction only {speedup:.2f}x faster than "
        "per-group calibration; expected a measurable win")
