"""E11 — co-operative execution: host work hidden behind an offload.

The plain offload leaves the host idle for the job's duration; the
overlapped protocol dispatches, runs host-side work, then synchronizes.
This bench sweeps the host job's size across the accelerator job's
runtime and shows the exposed wait collapsing to the WFI fall-through
cost once the host becomes the critical path.
"""

from repro import experiments


def test_overlapped_execution(bench_once):
    result = bench_once(experiments.overlap_experiment)
    print()
    print(result.render())

    rows = result.rows
    for host_n, (sequential, overlapped, _exposed) in rows.items():
        assert overlapped < sequential, host_n
    # Small host jobs: fully hidden (saving == the host job's cycles,
    # so the saving grows with the host job)...
    savings = [rows[n][0] - rows[n][1] for n in sorted(rows)]
    assert savings == sorted(savings)
    # ...until the host dominates: exposed wait collapses to ~the WFI
    # fall-through for the largest host job.
    largest = max(rows)
    assert rows[largest][2] <= 24
