"""A1 — feature ablation: multicast vs sync unit, each alone and together.

The paper evaluates both extensions as a bundle; this ablation isolates
their contributions by running all four hardware/software pairings on
identical jobs.
"""

from repro import experiments


def test_ablation_features(bench_once):
    result = bench_once(experiments.ablation_features)
    print()
    print(result.render())

    runtimes = result.runtimes
    for m in (8, 16, 32):
        # Every variant sits between baseline and extended.
        assert runtimes["extended"][m] <= runtimes["multicast_only"][m] \
            <= runtimes["baseline"][m]
        assert runtimes["extended"][m] <= runtimes["hw_sync_only"][m] \
            <= runtimes["baseline"][m]
    # At scale the dispatch path dominates: multicast is the big lever.
    saved_mcast = runtimes["baseline"][32] - runtimes["multicast_only"][32]
    saved_sync = runtimes["baseline"][32] - runtimes["hw_sync_only"][32]
    assert saved_mcast > 5 * saved_sync
