"""E9 — the model as a scheduler: placement policies on a job stream.

The paper's closing claim is that its runtime model enables offload
decisions; this bench applies it at workload scale — a stream of
fine-grained jobs placed per job by the fitted models — against the
static policies a system without the model would use.
"""

from repro import experiments


def test_scheduler_policies(bench_once):
    result = bench_once(experiments.scheduler_experiment)
    print()
    print(result.render())

    adaptive = result.makespans["model_driven"]
    # The adaptive policy beats every static one...
    for policy, makespan in result.makespans.items():
        if policy != "model_driven":
            assert adaptive <= makespan, policy
    # ...dramatically so against host-only on this mix,
    assert result.speedup_over("always_host") > 3.0
    # ...and visibly against offload-everything (the fine-grained jobs).
    assert result.speedup_over("always_offload_32") > 1.05
    # It genuinely mixes placements.
    assert 0 < result.offloaded["model_driven"] < result.num_jobs
