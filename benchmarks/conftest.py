"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (see DESIGN.md
§4).  The pytest-benchmark timings measure our *simulator's* wall-clock
cost for the experiment; the reproduced tables (the paper's numbers)
are printed to stdout — run with ``-s`` to see them — and their shapes
are asserted so the harness doubles as a regression gate.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single timed round (experiments are
    deterministic, so repetition only adds wall time)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def bench_once(benchmark):
    """Fixture form of :func:`run_once`."""
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
