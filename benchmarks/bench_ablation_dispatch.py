"""A2 — dispatch-cost sensitivity: where the baseline optimum sits.

Sweeps the host store-port occupancy (the per-cluster doorbell cost)
and tracks the baseline design's optimal cluster count — quantifying
the co-design pressure the multicast extension relieves.
"""

from repro import experiments


def test_ablation_dispatch(bench_once):
    result = bench_once(experiments.ablation_dispatch)
    print()
    print(result.render())

    # Slower dispatch must never move the optimum toward MORE clusters.
    costs = sorted(result.optima)
    optima = [result.optima[cost] for cost in costs]
    assert optima == sorted(optima, reverse=True)
    # Cheap dispatch leaves headroom to scale out; expensive dispatch
    # squeezes the sweet spot down (the AMO-and-poll completion costs
    # keep even a free dispatch from favouring the full fabric).
    assert result.optima[costs[0]] >= 8
    assert result.optima[costs[-1]] <= 4
    # And the whole baseline curve shifts up with the dispatch cost.
    for m in result.curves[costs[0]]:
        assert result.curves[costs[-1]][m] >= result.curves[costs[0]][m]
